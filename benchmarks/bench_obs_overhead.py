"""Observability overhead benchmark: what does continuous obs cost?

Runs the same served workload twice -- once on a bare server and once
with the full continuous-observability surface enabled (RunHistory
store, Prometheus scrape endpoint, SLO watchdog) -- and records per-
temperature latency plus the overhead ratio.  The join answer must be
identical in both modes (observability never touches the data path);
the warm-artifact overhead ratio is the number the perfsmoke guard in
``tests/test_obs.py`` protects (< 2%).

Results land in ``benchmarks/results/BENCH_obs.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \
        --n 50000 --eps 0.008 --repeats 5
"""

import argparse
import json
import statistics
import tempfile
import time
from pathlib import Path

from conftest import bench_run_metadata

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_obs.json"

MODES = ("obs_off", "obs_on")


def _timed_query(client, **fields):
    t0 = time.perf_counter()
    response = client.query(**fields)
    return time.perf_counter() - t0, response


def run_mode(mode, config, n, eps, kernel, repeats):
    """One server lifetime: cold + warm-artifact + warm-result latencies."""
    from repro.serving import connect, start_in_thread

    base = dict(r="R", s="S", eps=eps, kernel=kernel, method="lpib",
                max_pairs=0)
    with start_in_thread(config) as handle:
        address = handle.address
        with connect(address, timeout=600.0) as client:
            client.register("R", "R1", base_n=n)
            client.register("S", "S1", base_n=n)

            cold_wall, cold = _timed_query(client, **base)
            warm_art = []
            for _ in range(repeats):
                wall, resp = _timed_query(client, **base,
                                          reuse_results=False)
                assert resp["warm_artifacts"]
                warm_art.append(wall)
            warm_res = []
            for _ in range(repeats):
                wall, resp = _timed_query(client, **base)
                assert resp["cached_result"]
                warm_res.append(wall)

            stats = client.stats()
    history = stats.get("history") or {}
    return {
        "mode": mode,
        "n": n,
        "eps": eps,
        "kernel": kernel,
        "repeats": repeats,
        "results": cold["results"],
        "cold_seconds": round(cold_wall, 4),
        "warm_artifact_seconds": round(min(warm_art), 4),
        "warm_artifact_mean_seconds": round(statistics.mean(warm_art), 4),
        "warm_result_seconds": round(min(warm_res), 5),
        "history_reports": history.get("appended", 0),
        "history_bytes": history.get("active_bytes", 0),
        "slo_observed": (stats.get("slo") or {}).get("observed", 0),
        "metrics_endpoint": bool(stats.get("metrics_endpoint")),
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=50_000, help="points per side")
    ap.add_argument("--eps", type=float, default=0.008)
    ap.add_argument("--kernel", default="grid_hash")
    ap.add_argument("--repeats", type=int, default=5,
                    help="warm measurements per temperature; min is kept")
    ap.add_argument("--out", default=str(RESULTS))
    args = ap.parse_args(argv)

    from repro.serving import ServerConfig

    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        configs = {
            "obs_off": ServerConfig(backend="serial"),
            "obs_on": ServerConfig(
                backend="serial",
                history_path=str(Path(tmp) / "history.jsonl"),
                metrics_port=0,
                slo_p95_seconds=60.0,
            ),
        }
        for mode in MODES:
            row = run_mode(
                mode, configs[mode], args.n, args.eps, args.kernel,
                args.repeats,
            )
            rows.append(row)
            print(
                f"{mode:>8}: cold {row['cold_seconds']:.3f}s | "
                f"warm artifacts {row['warm_artifact_seconds']:.3f}s | "
                f"warm result {row['warm_result_seconds'] * 1e3:.2f}ms | "
                f"{row['results']:,} results"
            )

    off, on = rows
    assert on["results"] == off["results"], (
        "observability changed the answer: "
        f"{on['results']} vs {off['results']} results"
    )
    assert on["history_reports"] > 0 and on["metrics_endpoint"], (
        "obs_on mode must actually exercise the observability surface"
    )
    overhead = {
        "warm_artifact_ratio": round(
            on["warm_artifact_seconds"]
            / max(off["warm_artifact_seconds"], 1e-9), 4
        ),
        "cold_ratio": round(
            on["cold_seconds"] / max(off["cold_seconds"], 1e-9), 4
        ),
    }
    print(
        f"overhead: warm x{overhead['warm_artifact_ratio']:.3f}, "
        f"cold x{overhead['cold_ratio']:.3f} "
        f"({on['history_reports']} reports appended)"
    )

    payload = {
        "description": (
            "continuous-observability overhead: bare server vs history + "
            "metrics endpoint + SLO watchdog"
        ),
        **bench_run_metadata(),
        "overhead": overhead,
        "runs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
