"""Recovery-cost benchmark: block store on vs off under the same faults.

Sweeps deterministic fault plans of increasing probability (``fetch`` and
``kill`` faults at ``p = 0.1, 0.3, 0.5, 1.0``) and runs every plan twice:
once with the legacy whole-partition recovery and once with the block
store plus per-cell checkpoints (``spill=disk, checkpoint_cells=True``).
Per rate it records both runs' modelled recovery makespan, refetched
bytes/blocks, salvaged cells and measured walls, plus the ratio between
them -- the number the subsystem exists to lower.  Every pair of runs
must produce exactly as many results as the fault-free baseline.
Results land in ``benchmarks/results/BENCH_recovery.json``.

Run directly for the full sweep::

    PYTHONPATH=src python benchmarks/bench_recovery_cost.py \
        --n 60000 --workers 4 --backend threads
"""

import argparse
import json
import os
import tempfile
import time
from pathlib import Path

from conftest import bench_run_metadata

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_recovery.json"

RATES = (0.1, 0.3, 0.5, 1.0)


def make_inputs(n, seed_r=5, seed_s=6):
    import numpy as np

    from repro.data.pointset import PointSet

    rng_r = np.random.default_rng(seed_r)
    rng_s = np.random.default_rng(seed_s)
    r = PointSet(rng_r.uniform(0, 1, n), rng_r.uniform(0, 1, n), name="R")
    s = PointSet(rng_s.uniform(0, 1, n), rng_s.uniform(0, 1, n), name="S")
    return r, s


def run_once(r, s, eps, kernel, backend, workers, fault_spec, store):
    from repro.joins.distance_join import JoinConfig, distance_join

    overrides = {}
    spill_dir = None
    if store:
        spill_dir = tempfile.mkdtemp(prefix="bench-recovery-")
        overrides = dict(spill="disk", spill_dir=spill_dir,
                         checkpoint_cells=True)
    try:
        cfg = JoinConfig(
            eps=eps,
            method="lpib",
            num_workers=workers,
            local_kernel=kernel,
            execution_backend=backend,
            executor_workers=workers,
            faults=fault_spec,
            max_retries=3,
            **overrides,
        )
        t0 = time.perf_counter()
        res = distance_join(r, s, cfg)
        wall = time.perf_counter() - t0
    finally:
        if spill_dir is not None:
            leftovers = os.listdir(spill_dir) if os.path.isdir(spill_dir) else []
            if leftovers:
                raise AssertionError(f"spill dir leaked files: {leftovers}")
            if os.path.isdir(spill_dir):
                os.rmdir(spill_dir)
    m = res.metrics
    return {
        "store": store,
        "wall_seconds": round(wall, 4),
        "recovery_seconds": round(m.recovery_seconds, 4),
        "recovery_time_model": round(m.recovery_time_model, 6),
        "refetch_bytes": m.extra.get("refetch_bytes", 0.0),
        "fetch_retries": m.extra.get("fetch_retries", 0.0),
        "blocks_spilled": m.blocks_spilled,
        "blocks_refetched": m.blocks_refetched,
        "cells_salvaged": m.cells_salvaged,
        "salvaged_seconds": round(m.salvaged_seconds, 4),
        "salvaged_time_model": round(m.salvaged_time_model, 6),
        "task_retries": m.task_retries,
        "results": m.results,
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=60_000, help="points per side")
    ap.add_argument("--workers", type=int, default=4)
    ap.add_argument("--eps", type=float, default=0.009)
    ap.add_argument("--kernel", default="grid_hash")
    ap.add_argument("--backend", default="threads",
                    choices=("serial", "threads", "processes"))
    ap.add_argument("--rates", nargs="*", type=float, default=list(RATES),
                    help="injected failure probabilities to sweep")
    ap.add_argument("--out", default=str(RESULTS))
    args = ap.parse_args(argv)

    r, s = make_inputs(args.n)
    baseline = run_once(r, s, args.eps, args.kernel, args.backend,
                        args.workers, None, store=False)
    print(f"fault-free baseline: {baseline['results']:,} results, "
          f"wall {baseline['wall_seconds']:.2f}s")

    rows = []
    for rate in args.rates:
        spec = f"fetch:p={rate:g}:times=1,kill:p={rate:g}:times=1"
        pair = {"fault_rate": rate, "fault_spec": spec}
        for store in (False, True):
            row = run_once(r, s, args.eps, args.kernel, args.backend,
                           args.workers, spec, store)
            if row["results"] != baseline["results"]:
                raise AssertionError(
                    f"recovery changed the answer at p={rate} "
                    f"(store={store}): {row['results']} vs "
                    f"{baseline['results']} results"
                )
            pair["with_store" if store else "no_store"] = row
        no, yes = pair["no_store"], pair["with_store"]
        if no["recovery_time_model"] > 0:
            pair["model_recovery_ratio"] = round(
                yes["recovery_time_model"] / no["recovery_time_model"], 4
            )
        if no["refetch_bytes"] > 0:
            pair["refetch_bytes_ratio"] = round(
                yes["refetch_bytes"] / no["refetch_bytes"], 4
            )
        rows.append(pair)
        print(
            f"p={rate:>4}: modelled recovery "
            f"{no['recovery_time_model']:.4f}s -> "
            f"{yes['recovery_time_model']:.4f}s "
            f"(x{pair.get('model_recovery_ratio', float('nan')):.3f}), "
            f"refetch {no['refetch_bytes'] / 1e6:.2f}MB -> "
            f"{yes['refetch_bytes'] / 1e6:.2f}MB, "
            f"salvaged {yes['cells_salvaged']} cells"
        )

    payload = {
        "description": "block-level vs whole-partition recovery cost",
        **bench_run_metadata(),
        "config": {
            "n": args.n, "eps": args.eps, "kernel": args.kernel,
            "backend": args.backend, "sim_workers": args.workers,
        },
        "baseline": baseline,
        "runs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
