"""Serving latency benchmark: cold vs. warm cache, concurrent throughput.

Starts an in-process join server (:mod:`repro.serving`), registers the
paper's synthetic R1/S1 datasets, and measures per-query latency for the
three temperatures a resident server distinguishes:

- **cold**   -- first query: grid + assignment artifacts are built and
  the join executes end to end.
- **warm_artifacts** -- same parameters with ``reuse_results`` disabled:
  the join re-executes but replays the cached build_partition bundle.
- **warm_result**    -- identical repeat query: answered straight from
  the cross-query result cache (block store), no join at all.

A final phase replays a small mixed workload from ``--clients``
concurrent threads (half cache hits, half distinct epsilons) and records
aggregate throughput plus the server's own admission / cache counters.
Results land in ``benchmarks/results/BENCH_serving.json``; the
acceptance bar is warm latency < cold latency.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving_latency.py \
        --n 50000 --eps 0.008 --repeats 3 --clients 4
"""

import argparse
import json
import statistics
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import bench_run_metadata

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_serving.json"


def _timed_query(client, **fields):
    t0 = time.perf_counter()
    response = client.query(**fields)
    return time.perf_counter() - t0, response


def measure_temperatures(client, n, eps, kernel, repeats):
    """Cold, warm-artifact, and warm-result latency rows for one config."""
    # max_pairs=0: measure serving latency, not JSON pair shipping.
    base = dict(r="R", s="S", eps=eps, kernel=kernel, method="lpib",
                max_pairs=0)

    cold_wall, cold = _timed_query(client, **base)
    assert not cold["cached_result"] and not cold["warm_artifacts"], (
        "first query must be a cold build"
    )

    # Re-executes the join (result reuse off) but replays the cached
    # grid/assignment bundle -- isolates the artifact cache's benefit.
    warm_art = []
    for _ in range(repeats):
        wall, resp = _timed_query(client, **base, reuse_results=False)
        assert resp["warm_artifacts"], "expected an artifact-cache hit"
        warm_art.append(wall)

    # Identical repeat: served from the cross-query result cache.
    warm_res = []
    for _ in range(repeats):
        wall, resp = _timed_query(client, **base)
        assert resp["cached_result"], "expected a result-cache hit"
        warm_res.append(wall)

    results = cold["results"]
    rows = [
        {
            "phase": "cold",
            "n": n,
            "eps": eps,
            "kernel": kernel,
            "latency_seconds": round(cold_wall, 4),
            "results": results,
        },
        {
            "phase": "warm_artifacts",
            "n": n,
            "eps": eps,
            "kernel": kernel,
            "latency_seconds": round(min(warm_art), 4),
            "latency_mean_seconds": round(statistics.mean(warm_art), 4),
            "repeats": repeats,
            "results": results,
        },
        {
            "phase": "warm_result",
            "n": n,
            "eps": eps,
            "kernel": kernel,
            "latency_seconds": round(min(warm_res), 4),
            "latency_mean_seconds": round(statistics.mean(warm_res), 4),
            "repeats": repeats,
            "results": results,
        },
    ]
    return rows, cold_wall, min(warm_art), min(warm_res)


def measure_throughput(address, n, eps, kernel, clients, per_client):
    """Concurrent mixed workload: half repeats, half distinct epsilons."""
    from repro.serving import connect

    def one_client(idx):
        walls = []
        with connect(address, timeout=600.0) as client:
            for j in range(per_client):
                # Even requests repeat the warmed eps (cache hits);
                # odd ones vary eps per client (cold or coalesced).
                q_eps = eps if j % 2 == 0 else eps * (1 + 0.1 * (idx + 1))
                wall, _ = _timed_query(
                    client, r="R", s="S", eps=q_eps, kernel=kernel,
                    method="lpib", max_pairs=0,
                )
                walls.append(wall)
        return walls

    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        walls = [w for ws in pool.map(one_client, range(clients)) for w in ws]
    elapsed = time.perf_counter() - t0
    return {
        "phase": "concurrent",
        "n": n,
        "eps": eps,
        "kernel": kernel,
        "clients": clients,
        "queries": len(walls),
        "wall_seconds": round(elapsed, 4),
        "throughput_qps": round(len(walls) / max(elapsed, 1e-9), 2),
        "latency_p50_seconds": round(statistics.median(walls), 4),
        "latency_max_seconds": round(max(walls), 4),
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=50_000, help="points per side")
    ap.add_argument("--eps", type=float, default=0.008)
    ap.add_argument("--kernel", default="grid_hash")
    ap.add_argument("--repeats", type=int, default=3,
                    help="warm measurements per temperature")
    ap.add_argument("--clients", type=int, default=4,
                    help="concurrent client threads")
    ap.add_argument("--per-client", type=int, default=4,
                    help="queries each concurrent client sends")
    ap.add_argument("--out", default=str(RESULTS))
    args = ap.parse_args(argv)

    from repro.serving import ServerConfig, connect, start_in_thread

    config = ServerConfig(backend="serial", max_inflight=2, max_queue=64)
    rows = []
    with start_in_thread(config) as handle:
        address = {"socket": handle.address["socket"]} \
            if handle.address.get("socket") else handle.address
        with connect(address, timeout=600.0) as client:
            client.register("R", "R1", base_n=args.n)
            client.register("S", "S1", base_n=args.n)
            temp_rows, cold, warm_art, warm_res = measure_temperatures(
                client, args.n, args.eps, args.kernel, args.repeats
            )
            rows.extend(temp_rows)
            print(
                f"cold {cold:.3f}s | warm artifacts {warm_art:.3f}s "
                f"({cold / max(warm_art, 1e-9):.1f}x) | warm result "
                f"{warm_res * 1e3:.2f}ms ({cold / max(warm_res, 1e-9):.0f}x)"
            )

        throughput = measure_throughput(
            address, args.n, args.eps, args.kernel,
            args.clients, args.per_client,
        )
        rows.append(throughput)
        print(
            f"{throughput['clients']} clients x "
            f"{throughput['queries'] // throughput['clients']} queries: "
            f"{throughput['throughput_qps']:.2f} q/s, "
            f"p50 {throughput['latency_p50_seconds'] * 1e3:.1f}ms"
        )

        with connect(address, timeout=60.0) as client:
            stats = client.stats()
        server_counters = {
            "queries": stats["serving"]["queries"],
            "cold_builds": stats["serving"]["cold_builds"],
            "warm_builds": stats["serving"]["warm_builds"],
            "result_cache_hits": stats["serving"]["result_cache_hits"],
            "coalesced": stats["admission"]["coalesced"],
            "artifact_hits": stats["artifact_cache"]["hits"],
            "artifact_misses": stats["artifact_cache"]["misses"],
        }

    assert warm_res < cold and warm_art < cold, (
        "warm latency must beat cold latency"
    )
    payload = {
        "description": (
            "join-server latency by cache temperature and concurrent "
            "throughput"
        ),
        **bench_run_metadata(),
        "server": {"backend": config.backend,
                   "max_inflight": config.max_inflight},
        "counters": server_counters,
        "runs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
