"""Local-kernel micro-benchmark ("implementation matters").

The paper builds on the observation [Nobari et al., EDBT 2017; Sidlauskas
& Jensen, VLDB 2014] that the choice of local join implementation matters
greatly.  This benchmark compares the four per-partition kernels on a
representative dense cell, asserting they agree and that the plane sweep
(the default and PBSM's classic) examines no more candidates than the
nested loop.
"""

import numpy as np
import pytest

from repro.bench.report import format_table, write_report
from repro.joins.local import LOCAL_KERNELS


@pytest.fixture(scope="module")
def dense_cell():
    rng = np.random.default_rng(99)
    n = 4000
    # one dense cell's worth of points: a cluster plus background
    def cloud(seed):
        g = np.random.default_rng(seed)
        xs = np.concatenate([g.normal(0.5, 0.08, n // 2), g.uniform(0, 1, n // 2)])
        ys = np.concatenate([g.normal(0.5, 0.08, n // 2), g.uniform(0, 1, n // 2)])
        return np.arange(n, dtype=np.int64), xs, ys

    del rng
    return cloud(1), cloud(2), 0.02


def test_kernels_agree_and_report_candidates(benchmark, dense_cell):
    r, s, eps = dense_cell
    rows = []
    reference = None
    candidates = {}
    for name, kernel in LOCAL_KERNELS.items():
        rid, sid, cand = kernel(*r, *s, eps)
        pairs = set(zip(rid.tolist(), sid.tolist()))
        if reference is None:
            reference = pairs
        assert pairs == reference, name
        candidates[name] = cand
        rows.append([name, len(pairs), cand])
    write_report(
        "local_kernels",
        format_table(
            "Local kernels -- one dense cell (4k x 4k points)",
            ["kernel", "results", "candidates examined"],
            rows,
        ),
    )
    assert candidates["plane_sweep"] <= candidates["nested_loop"]
    assert candidates["grid_hash"] <= candidates["nested_loop"]

    benchmark.pedantic(
        lambda: LOCAL_KERNELS["plane_sweep"](*r, *s, eps), rounds=3, iterations=1
    )


@pytest.mark.parametrize("name", sorted(set(LOCAL_KERNELS) - {"nested_loop"}))
def test_kernel_timing(benchmark, dense_cell, name):
    r, s, eps = dense_cell
    benchmark.pedantic(
        lambda: LOCAL_KERNELS[name](*r, *s, eps), rounds=3, iterations=1
    )
