"""Table 4 -- join selectivity and result-set cardinalities.

Paper's shape: selectivity grows roughly quadratically with eps (the
matching disc area), and stays *constant* across the data-size sweep
(both inputs scale together, so matches grow with the cross-product).
"""

from repro.bench.experiments import table4_selectivity
from repro.bench.harness import DEFAULT_EPS, run_method
from repro.bench.report import write_report


def test_table4_selectivity(benchmark, ctx):
    text, data = table4_selectivity(ctx)
    write_report("table4_selectivity", text)

    eps_values = ctx.eps_values()
    for combo in (("S1", "S2"), ("R1", "S1")):
        sel = [data[(combo, eps)] for eps in eps_values]
        assert all(b > a for a, b in zip(sel, sel[1:])), combo
        # roughly quadratic in eps: compare against the disc-area ratio
        area_ratio = (eps_values[-1] / eps_values[0]) ** 2
        assert 0.4 * area_ratio < sel[-1] / sel[0] < 2.5 * area_ratio, combo

    sizes = ctx.size_factors()
    sel_by_size = [data[("size", f)] for f in sizes]
    for value in sel_by_size[1:]:
        assert abs(value - sel_by_size[0]) / sel_by_size[0] < 0.15

    r, s = ctx.cache.combo(("S1", "S2"))
    benchmark.pedantic(
        lambda: run_method(r, s, DEFAULT_EPS, "lpib", ctx.scale),
        rounds=3, iterations=1,
    )
