"""Planner benchmark: auto-tuned plans vs static plans on modelled clocks.

Scores the cost-based planner (``repro.planner.plan_join``) against the
full static configuration grid on the paper's workload grid:

* **fig10 workloads** -- the eps sweep (0.009..0.018) over the dataset
  combos (S1 x S2, R1 x S1, R2 x R1);
* **fig15 workload** -- S1 x S2 at the default eps with the grid
  resolution sweep extended to factor 5.0.

For every workload each static plan (method x resolution factor, kernel
and simulated workers held fixed so the comparison isolates what the
planner actually searches here) is *executed* and its measured modelled
clock (``JoinMetrics.exec_time_model``: the simulated cluster's makespan
over the real data) recorded.  The planner then picks its plan from
sampled statistics alone and its choice is executed the same way.

Scoring per workload: ``auto`` vs ``best_static`` (oracle minimum over
the grid -- unobtainable without running everything) and
``worst_static`` (the cost of guessing badly).  The planner must never
lose to worst-static; its regret vs the oracle is the honest number.
Results land in ``benchmarks/results/BENCH_planner.json``::

    PYTHONPATH=src python benchmarks/bench_planner.py --base-n 8000
"""

import argparse
import json
from pathlib import Path

from conftest import bench_run_metadata

RESULTS = Path(__file__).resolve().parent / "results" / "BENCH_planner.json"

FIG10_COMBOS = (("S1", "S2"), ("R1", "S1"), ("R2", "R1"))
FIG10_EPS = (0.009, 0.012, 0.015, 0.018)
FIG15_FACTORS = (2.0, 3.0, 4.0, 5.0)
STATIC_METHODS = ("lpib", "diff", "uni_r", "uni_s", "eps_grid")


def _measured_clock(r, s, eps, method, factor, kernel, workers):
    from repro.joins.distance_join import JoinConfig, distance_join

    cfg = JoinConfig(
        eps=eps,
        method=method,
        resolution_factor=factor,
        local_kernel=kernel,
        num_workers=workers,
    )
    return distance_join(r, s, cfg).metrics.exec_time_model


def score_workload(r, s, eps, factors, kernel, workers):
    """Execute the static grid and the planner's choice; score both."""
    from repro.planner import plan_join

    statics = {}
    for method in STATIC_METHODS:
        # eps_grid ignores the resolution factor (always a 1x-eps grid)
        for factor in (factors[:1] if method == "eps_grid" else factors):
            statics[(method, factor)] = _measured_clock(
                r, s, eps, method, factor, kernel, workers
            )
    planned = plan_join(
        r, s, eps,
        pins={"kernel": kernel, "workers": workers},
        factors=tuple(factors),
    )
    chosen = planned.chosen
    auto_clock = _measured_clock(
        r, s, eps, chosen.method, chosen.resolution_factor, kernel, workers
    )
    best_key = min(statics, key=statics.get)
    worst_key = max(statics, key=statics.get)
    best, worst = statics[best_key], statics[worst_key]
    return {
        "r": r.name,
        "s": s.name,
        "n_r": len(r),
        "n_s": len(s),
        "eps": eps,
        "kernel": kernel,
        "workers": workers,
        "chosen_method": chosen.method,
        "chosen_factor": chosen.resolution_factor,
        "predicted_clock": round(chosen.predicted_clock, 6),
        "auto_clock": round(auto_clock, 6),
        "best_static": {
            "method": best_key[0], "factor": best_key[1],
            "clock": round(best, 6),
        },
        "worst_static": {
            "method": worst_key[0], "factor": worst_key[1],
            "clock": round(worst, 6),
        },
        "regret_vs_best": round(auto_clock / best, 4) if best else None,
        "saved_vs_worst": round(worst / auto_clock, 4) if auto_clock else None,
        "beats_worst_static": bool(auto_clock <= worst),
        "static_grid": {
            f"{m}@{f:g}": round(t, 6) for (m, f), t in sorted(statics.items())
        },
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--base-n", type=int, default=8000,
                    help="dataset cardinality (paper scale stand-in)")
    ap.add_argument("--workers", type=int, default=12)
    ap.add_argument("--kernel", default="plane_sweep")
    ap.add_argument("--factors", type=float, nargs="*",
                    default=[2.0, 3.0, 4.0])
    ap.add_argument("--out", default=str(RESULTS))
    args = ap.parse_args(argv)

    from repro.bench.harness import DEFAULT_EPS
    from repro.data.datasets import load_dataset

    datasets = {
        name: load_dataset(name, base_n=args.base_n)
        for name in ("R1", "R2", "S1", "S2")
    }

    rows = []
    workloads = [
        (ra, sa, eps, tuple(args.factors))
        for ra, sa in FIG10_COMBOS
        for eps in FIG10_EPS
    ]
    # fig15's sweep: the default workload with the factor grid extended
    workloads.append(("S1", "S2", DEFAULT_EPS, FIG15_FACTORS))

    for ra, sa, eps, factors in workloads:
        row = score_workload(
            datasets[ra], datasets[sa], eps, factors,
            args.kernel, args.workers,
        )
        rows.append(row)
        print(
            f"{ra}x{sa} eps={eps:g}: auto {row['auto_clock']:.3f}s "
            f"({row['chosen_method']}@{row['chosen_factor']:g})  "
            f"best {row['best_static']['clock']:.3f}s "
            f"({row['best_static']['method']}@"
            f"{row['best_static']['factor']:g})  "
            f"worst {row['worst_static']['clock']:.3f}s  "
            f"regret {row['regret_vs_best']:.3f}"
        )

    regrets = [row["regret_vs_best"] for row in rows]
    wins = sum(row["auto_clock"] <= row["best_static"]["clock"] * 1.0001
               for row in rows)
    summary = {
        "workloads": len(rows),
        "auto_matches_best": wins,
        "mean_regret_vs_best": round(sum(regrets) / len(regrets), 4),
        "max_regret_vs_best": round(max(regrets), 4),
        "always_beats_worst": all(row["beats_worst_static"] for row in rows),
    }
    print(
        f"\nauto matched best-static on {wins}/{len(rows)} workloads; "
        f"mean regret {summary['mean_regret_vs_best']:.3f}, "
        f"max {summary['max_regret_vs_best']:.3f}; "
        f"never loses to worst-static: {summary['always_beats_worst']}"
    )

    payload = {
        "description": (
            "cost-based planner vs the static plan grid on modelled clocks"
        ),
        "base_n": args.base_n,
        **bench_run_metadata(),
        "summary": summary,
        "runs": rows,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if summary["always_beats_worst"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
