"""Table 1 -- the running example of Fig. 2, reproduced *exactly*.

A hand-constructed 16-point layout satisfies every replication constraint
in the paper's Table 1; running the PBSM assigners over it must reproduce
the table to the digit: per-cell costs (15/4/10/12 vs 6/18/10/8), replica
counts (12 vs 13) and totals (41 vs 42).
"""

from repro.bench.experiments import (
    TABLE1_EXPECTED,
    table1_running_example,
)
from repro.bench.report import write_report


def test_table1_running_example(benchmark, ctx):
    text, results = table1_running_example(ctx)
    write_report("table1_running_example", text)

    for method, expected in TABLE1_EXPECTED.items():
        for key, value in expected.items():
            assert results[method][key] == value, (method, key)

    # replicating R is the better universal choice, as the paper observes
    assert results["uni_r"]["total"] < results["uni_s"]["total"]
    assert results["uni_r"]["replicas"] < results["uni_s"]["replicas"]

    benchmark.pedantic(table1_running_example, rounds=5, iterations=1)
