"""Unit tests for per-cell sample statistics."""

import numpy as np
import pytest

from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.grid.statistics import GridStatistics


@pytest.fixture
def stats4x4(grid4x4):
    return GridStatistics(grid4x4)


class TestCollection:
    def test_totals(self, grid4x4, stats4x4):
        stats4x4.add_points(np.array([1.0, 1.1, 6.0]), np.array([1.0, 1.2, 6.0]), Side.R)
        cell00 = grid4x4.cell_id(0, 0)
        cell22 = grid4x4.cell_id(2, 2)
        assert stats4x4.cell_count(cell00, Side.R) == 2
        assert stats4x4.cell_count(cell22, Side.R) == 1
        assert stats4x4.cell_count(cell00, Side.S) == 0
        assert stats4x4.sampled_count(Side.R) == 3

    def test_strip_counts(self, grid4x4, stats4x4):
        # cell (0,0) spans [0,2.5]^2; x=2.0 is within eps=1 of the E border
        stats4x4.add_points(np.array([2.0]), np.array([1.25]), Side.S)
        cell = grid4x4.cell_id(0, 0)
        assert stats4x4.strip_count(cell, "E", Side.S) == 1
        assert stats4x4.strip_count(cell, "W", Side.S) == 0
        assert stats4x4.strip_count(cell, "N", Side.S) == 0

    def test_interior_point_in_no_strip(self, grid4x4, stats4x4):
        stats4x4.add_points(np.array([1.25]), np.array([1.25]), Side.R)
        cell = grid4x4.cell_id(0, 0)
        for border in "EWNS":
            assert stats4x4.strip_count(cell, border, Side.R) == 0

    def test_corner_counts_quarter_disc(self, grid4x4, stats4x4):
        # near the NE corner of cell (0,0) at (2.5, 2.5)
        stats4x4.add_points(np.array([2.0, 1.6]), np.array([2.0, 1.6]), Side.R)
        cell = grid4x4.cell_id(0, 0)
        # (2.0, 2.0): dist to corner = sqrt(0.5) <= 1; (1.6, 1.6): sqrt(1.62) > 1
        assert stats4x4.corner_count(cell, "NE", Side.R) == 1

    def test_point_in_two_strips(self, grid4x4, stats4x4):
        stats4x4.add_points(np.array([2.0]), np.array([2.0]), Side.R)
        cell = grid4x4.cell_id(0, 0)
        assert stats4x4.strip_count(cell, "E", Side.R) == 1
        assert stats4x4.strip_count(cell, "N", Side.R) == 1

    def test_shape_mismatch_rejected(self, stats4x4):
        with pytest.raises(ValueError):
            stats4x4.add_points(np.array([1.0, 2.0]), np.array([1.0]), Side.R)


class TestPairQueries:
    def test_side_pair_candidates(self, grid4x4, stats4x4):
        a, b = grid4x4.cell_id(0, 0), grid4x4.cell_id(1, 0)
        # one R point in a's E strip, one in b's W strip, one interior
        stats4x4.add_points(np.array([2.0, 2.7, 1.2]), np.array([1.0, 1.0, 1.0]), Side.R)
        assert stats4x4.pair_candidates(a, b, Side.R) == 2
        assert stats4x4.pair_candidates(b, a, Side.R) == 2  # symmetric

    def test_diagonal_pair_candidates(self, grid4x4, stats4x4):
        a, d = grid4x4.cell_id(0, 0), grid4x4.cell_id(1, 1)
        stats4x4.add_points(np.array([2.2, 2.8]), np.array([2.2, 2.8]), Side.S)
        assert stats4x4.pair_candidates(a, d, Side.S) == 2

    def test_directed_candidates(self, grid4x4, stats4x4):
        a, b = grid4x4.cell_id(0, 0), grid4x4.cell_id(1, 0)
        stats4x4.add_points(np.array([2.0]), np.array([1.0]), Side.R)
        assert stats4x4.directed_candidates(a, b, Side.R) == 1
        assert stats4x4.directed_candidates(b, a, Side.R) == 0

    def test_edge_weight_is_product(self, grid4x4, stats4x4):
        a, b = grid4x4.cell_id(0, 0), grid4x4.cell_id(1, 0)
        stats4x4.add_points(np.array([2.0]), np.array([1.0]), Side.R)  # in a's E strip
        stats4x4.add_points(np.array([3.0, 4.0, 4.4]), np.array([1.0, 1.0, 1.0]), Side.S)
        # 1 R point replicated from a, times 3 S points in b
        assert stats4x4.edge_weight(a, b, Side.R) == 3

    def test_estimated_cell_cost(self, grid4x4, stats4x4):
        cell = grid4x4.cell_id(0, 0)
        stats4x4.add_points(np.array([1.0, 1.1]), np.array([1.0, 1.1]), Side.R)
        stats4x4.add_points(np.array([1.2, 1.3, 1.4]), np.array([1.2, 1.3, 1.4]), Side.S)
        assert stats4x4.estimated_cell_cost(cell) == 6
        # 1/phi scaling applies per side, so the product scales by 1/phi^2
        assert stats4x4.estimated_cell_cost(cell, scale=10.0) == pytest.approx(600)

    def test_non_adjacent_rejected(self, grid4x4, stats4x4):
        with pytest.raises(ValueError):
            stats4x4.pair_candidates(
                grid4x4.cell_id(0, 0), grid4x4.cell_id(2, 0), Side.R
            )


def test_example_4_4_edge_weights():
    """Example 4.4 of the paper, reconstructed on a 2x2 grid.

    Cell B holds one R point in its strip towards A; cell A holds three S
    points.  The weight of the R-typed edge B->A must be 1 * 3 = 3.
    """
    grid = Grid(MBR(0, 0, 5, 5), eps=1.0)
    stats = GridStatistics(grid)
    a = grid.cell_id(0, 0)
    b = grid.cell_id(1, 0)
    # r2 in B near the border to A
    stats.add_points(np.array([2.8]), np.array([1.0]), Side.R)
    # s1, s2, s3 anywhere in A
    stats.add_points(np.array([0.5, 1.0, 2.0]), np.array([0.5, 1.0, 1.1]), Side.S)
    assert stats.edge_weight(b, a, Side.R) == 3
