"""Unit and integration tests for the QuadTree, R-tree and Sedona-like join."""

import numpy as np
import pytest

from repro.baselines.quadtree import QuadTreePartitioner
from repro.baselines.rtree import RTree
from repro.baselines.sedona_like import SedonaConfig, sedona_join
from repro.data.generators import gaussian_clusters, uniform
from repro.geometry.mbr import MBR
from repro.verify.oracle import kdtree_pairs


def cloud(n, seed, extent=10.0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0, extent, n), rng.uniform(0, extent, n)


class TestRTree:
    def test_envelope_query_matches_brute_force(self):
        xs, ys = cloud(300, 1)
        tree = RTree(xs, ys, leaf_capacity=8)
        rng = np.random.default_rng(2)
        for _ in range(25):
            x0, y0 = rng.uniform(0, 9, 2)
            rect = MBR(x0, y0, x0 + rng.uniform(0.1, 3), y0 + rng.uniform(0.1, 3))
            hits, inspected = tree.query_envelope(rect)
            brute = {
                i
                for i in range(300)
                if rect.xmin <= xs[i] <= rect.xmax and rect.ymin <= ys[i] <= rect.ymax
            }
            assert set(hits.tolist()) == brute
            assert inspected >= len(brute)

    def test_query_within_matches_brute_force(self):
        xs, ys = cloud(200, 3)
        tree = RTree(xs, ys)
        for x, y, eps in [(5, 5, 1.0), (0, 0, 2.0), (9.5, 3.3, 0.5)]:
            hits, _ = tree.query_within(x, y, eps)
            brute = {
                i
                for i in range(200)
                if (xs[i] - x) ** 2 + (ys[i] - y) ** 2 <= eps * eps
            }
            assert set(hits.tolist()) == brute

    def test_empty_tree(self):
        tree = RTree(np.empty(0), np.empty(0))
        hits, inspected = tree.query_envelope(MBR(0, 0, 1, 1))
        assert len(hits) == 0 and inspected == 0
        assert tree.height() == 0

    def test_single_point(self):
        tree = RTree(np.array([1.0]), np.array([2.0]))
        hits, _ = tree.query_envelope(MBR(0, 0, 3, 3))
        assert hits.tolist() == [0]

    def test_height_grows_logarithmically(self):
        xs, ys = cloud(1000, 4)
        tree = RTree(xs, ys, leaf_capacity=4)
        assert 3 <= tree.height() <= 7

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            RTree(np.array([0.0]), np.array([0.0]), leaf_capacity=1)

    def test_mismatched_arrays(self):
        with pytest.raises(ValueError):
            RTree(np.array([0.0, 1.0]), np.array([0.0]))


class TestQuadTree:
    def test_leaves_tile_space(self):
        xs, ys = cloud(500, 5)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=50)
        assert qt.num_leaves >= 4
        total_area = sum(m.area for m in qt.leaf_mbrs())
        assert total_area == pytest.approx(100.0)

    def test_leaf_of_unique_and_consistent(self):
        xs, ys = cloud(400, 6)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=40)
        probe_x, probe_y = cloud(200, 7)
        for x, y in zip(probe_x, probe_y):
            leaf = qt.leaf_of(float(x), float(y))
            assert qt.leaf_mbrs()[leaf].contains_point(float(x), float(y))

    def test_leaves_overlapping(self):
        xs, ys = cloud(400, 8)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=40)
        rect = MBR(2, 2, 4, 4)
        overlapping = set(qt.leaves_overlapping(rect))
        for i, m in enumerate(qt.leaf_mbrs()):
            assert (i in overlapping) == m.intersects(rect)

    def test_no_split_below_capacity(self):
        xs, ys = cloud(10, 9)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=50)
        assert qt.num_leaves == 1

    def test_max_depth_caps_splitting(self):
        xs = np.full(500, 5.0)
        ys = np.full(500, 5.0)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=10, max_depth=3)
        assert qt.num_leaves <= 4**3

    def test_batch_matches_scalar(self):
        xs, ys = cloud(300, 10)
        qt = QuadTreePartitioner(MBR(0, 0, 10, 10), xs, ys, capacity=30)
        probe_x, probe_y = cloud(100, 11)
        batch = qt.leaf_of_batch(probe_x, probe_y)
        for i in range(100):
            assert batch[i] == qt.leaf_of(float(probe_x[i]), float(probe_y[i]))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QuadTreePartitioner(MBR(0, 0, 1, 1), np.empty(0), np.empty(0), capacity=0)


class TestSamjRtreeJoin:
    EPS = 0.02

    @pytest.fixture(scope="class")
    def inputs(self):
        from repro.verify.oracle import kdtree_pairs

        r = gaussian_clusters(1200, seed=51, name="R")
        s = gaussian_clusters(1000, seed=52, name="S")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), self.EPS)
        return r, s, truth

    def test_matches_oracle(self, inputs):
        from repro.baselines.rtree_join import SamjConfig, rtree_samj_join

        r, s, truth = inputs
        res = rtree_samj_join(r, s, SamjConfig(eps=self.EPS))
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # single assignment: duplicate-free

    def test_no_replication_but_multi_join_shipping(self, inputs):
        from repro.baselines.rtree_join import SamjConfig, rtree_samj_join

        r, s, _ = inputs
        m = rtree_samj_join(r, s, SamjConfig(eps=self.EPS)).metrics
        assert m.replicated_total == 0  # SAMJ: no point assigned twice
        # ... but subtrees are shipped to several tasks
        assert m.shuffle_records > len(r) + len(s)
        assert m.num_partitions >= 1

    def test_uniform_data(self):
        from repro.baselines.rtree_join import SamjConfig, rtree_samj_join
        from repro.verify.oracle import kdtree_pairs

        r = uniform(600, seed=53, name="u1")
        s = uniform(700, seed=54, name="u2")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.03)
        res = rtree_samj_join(r, s, SamjConfig(eps=0.03))
        assert res.pairs_set() == truth

    def test_validation(self, inputs):
        from repro.baselines.rtree_join import SamjConfig, rtree_samj_join

        r, s, _ = inputs
        with pytest.raises(ValueError):
            rtree_samj_join(r, s, SamjConfig(eps=0.0))

    def test_leaf_capacity_sweep(self, inputs):
        from repro.baselines.rtree_join import SamjConfig, rtree_samj_join

        r, s, truth = inputs
        for cap in (4, 16, 128):
            res = rtree_samj_join(r, s, SamjConfig(eps=self.EPS, leaf_capacity=cap))
            assert res.pairs_set() == truth, cap


class TestSedonaJoin:
    EPS = 0.02

    @pytest.fixture(scope="class")
    def inputs(self):
        r = gaussian_clusters(1000, seed=41, name="R")
        s = gaussian_clusters(1400, seed=42, name="S")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), self.EPS)
        return r, s, truth

    def test_matches_oracle(self, inputs):
        r, s, truth = inputs
        res = sedona_join(r, s, SedonaConfig(eps=self.EPS))
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # build side single-assigned: no dupes

    def test_swapped_sizes_still_correct(self, inputs):
        r, s, truth = inputs
        res = sedona_join(s, r, SedonaConfig(eps=self.EPS))
        assert {(b, a) for a, b in res.pairs_set()} == truth

    def test_smaller_side_is_replicated(self, inputs):
        r, s, _ = inputs  # |r| < |s|
        m = sedona_join(r, s, SedonaConfig(eps=self.EPS)).metrics
        assert m.replicated_r >= 0
        assert m.replicated_s == 0

    def test_uniform_data(self):
        r = uniform(500, seed=12, name="u1")
        s = uniform(600, seed=13, name="u2")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.04)
        res = sedona_join(r, s, SedonaConfig(eps=0.04))
        assert res.pairs_set() == truth

    def test_metrics_populated(self, inputs):
        r, s, _ = inputs
        m = sedona_join(r, s, SedonaConfig(eps=self.EPS)).metrics
        assert m.method == "sedona"
        assert m.shuffle_records >= len(r) + len(s)
        assert m.candidate_pairs >= m.results
        assert m.construction_time_model > 0
        assert m.join_time_model > 0

    def test_more_partitions_more_replication(self, inputs):
        r, s, _ = inputs
        few = sedona_join(r, s, SedonaConfig(eps=self.EPS, target_partitions=8)).metrics
        many = sedona_join(
            r, s, SedonaConfig(eps=self.EPS, target_partitions=128)
        ).metrics
        assert many.replicated_total >= few.replicated_total
