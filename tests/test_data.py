"""Unit tests for point sets, generators, datasets, sampling and IO."""

import numpy as np
import pytest

from repro.data.datasets import (
    TUPLE_SIZE_FACTORS,
    load_dataset,
    paper_datasets,
)
from repro.data.generators import UNIT_MBR, gaussian_clusters, real_like, uniform
from repro.data.io import parse_point_line, read_points_text, write_points_text
from repro.data.pointset import PointSet
from repro.data.sampling import bernoulli_sample
from repro.geometry.point import Side


class TestPointSet:
    def test_basic_construction(self):
        ps = PointSet([0.0, 1.0], [2.0, 3.0], name="t")
        assert len(ps) == 2
        assert ps.ids.tolist() == [0, 1]
        assert ps.record_bytes == 24

    def test_payload(self):
        ps = PointSet([0.0], [0.0], payload_bytes=100)
        assert ps.record_bytes == 124
        assert ps.with_payload(5).record_bytes == 29

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            PointSet([0.0, 1.0], [0.0])
        with pytest.raises(ValueError):
            PointSet([0.0], [0.0], ids=[1, 2])
        with pytest.raises(ValueError):
            PointSet([0.0], [0.0], payload_bytes=-1)

    def test_mbr(self):
        ps = PointSet([1.0, 4.0], [2.0, -1.0])
        m = ps.mbr()
        assert (m.xmin, m.ymin, m.xmax, m.ymax) == (1.0, -1.0, 4.0, 2.0)

    def test_mbr_empty_raises(self):
        with pytest.raises(ValueError):
            PointSet(np.empty(0), np.empty(0)).mbr()

    def test_subset(self):
        ps = PointSet([0.0, 1.0, 2.0], [0.0, 1.0, 2.0])
        sub = ps.subset(np.array([True, False, True]))
        assert len(sub) == 2
        assert sub.ids.tolist() == [0, 2]

    def test_tile_scales_and_stays_in_mbr(self):
        ps = gaussian_clusters(500, seed=1, name="base")
        tiled = ps.tile(4)
        assert len(tiled) == 2000
        box = ps.mbr()
        assert tiled.mbr().xmin >= box.xmin - 1e9
        assert np.unique(tiled.ids).size == 2000

    def test_tile_identity(self):
        ps = uniform(100, seed=2)
        assert ps.tile(1) is ps
        with pytest.raises(ValueError):
            ps.tile(0)

    def test_iter_triples(self):
        ps = PointSet([0.5], [0.25])
        assert list(ps.iter_triples()) == [(0, 0.5, 0.25)]

    def test_to_spatial_points(self):
        ps = PointSet([0.5], [0.25], payload_bytes=7)
        (p,) = ps.to_spatial_points(Side.S)
        assert (p.pid, p.x, p.y, p.side, p.payload_bytes) == (0, 0.5, 0.25, Side.S, 7)


class TestGenerators:
    def test_deterministic(self):
        a = gaussian_clusters(200, seed=9)
        b = gaussian_clusters(200, seed=9)
        assert np.array_equal(a.xs, b.xs)
        assert not np.array_equal(a.xs, gaussian_clusters(200, seed=10).xs)

    def test_sizes(self):
        assert len(uniform(123, seed=1)) == 123
        assert len(gaussian_clusters(77, seed=1)) == 77
        assert len(real_like(456, seed=1)) == 456

    def test_clipped_to_mbr(self):
        for gen in (uniform, gaussian_clusters, real_like):
            ps = gen(500, seed=3)
            assert ps.xs.min() >= UNIT_MBR.xmin and ps.xs.max() <= UNIT_MBR.xmax
            assert ps.ys.min() >= UNIT_MBR.ymin and ps.ys.max() <= UNIT_MBR.ymax

    def test_gaussian_is_clustered(self):
        """Clustered data occupies far fewer grid cells than uniform."""
        clustered = gaussian_clusters(3000, seed=4)
        flat = uniform(3000, seed=4)

        def occupied(ps):
            cx = (ps.xs * 40).astype(int)
            cy = (ps.ys * 40).astype(int)
            return len(set(zip(cx.tolist(), cy.tolist())))

        assert occupied(clustered) < 0.5 * occupied(flat)

    def test_real_like_heavy_tail(self):
        """The largest cluster dominates: top grid cell count is much larger
        than the median occupied cell count."""
        ps = real_like(5000, seed=5)
        cx = (ps.xs * 20).astype(int)
        cy = (ps.ys * 20).astype(int)
        counts = {}
        for key in zip(cx.tolist(), cy.tolist()):
            counts[key] = counts.get(key, 0) + 1
        values = sorted(counts.values())
        assert values[-1] > 10 * values[len(values) // 2]


class TestDatasets:
    def test_relative_cardinalities(self):
        sets = paper_datasets(base_n=1000)
        assert len(sets["S1"]) == 1000
        assert len(sets["S2"]) == 1000
        assert len(sets["R1"]) == 941
        assert len(sets["R2"]) == 427

    def test_distinct_distributions(self):
        sets = paper_datasets(base_n=500)
        assert not np.array_equal(sets["S1"].xs, sets["S2"].xs)

    def test_size_factor(self):
        assert len(load_dataset("S1", base_n=300, size_factor=4)) == 1200

    def test_payload_bytes_forwarded(self):
        assert load_dataset("S1", base_n=100, payload_bytes=64).record_bytes == 88

    def test_unknown_codename(self):
        with pytest.raises(ValueError):
            load_dataset("X9")

    def test_tuple_size_factors_monotone(self):
        values = [TUPLE_SIZE_FACTORS[f] for f in ("f0", "f1", "f2", "f3", "f4")]
        assert values == sorted(values)
        assert values[0] == 0


class TestSampling:
    def test_rate_bounds(self):
        ps = uniform(100, seed=1)
        with pytest.raises(ValueError):
            bernoulli_sample(ps, 0.0)
        with pytest.raises(ValueError):
            bernoulli_sample(ps, 1.5)

    def test_full_rate_identity(self):
        ps = uniform(100, seed=1)
        assert bernoulli_sample(ps, 1.0) is ps

    def test_sample_size_near_expectation(self):
        ps = uniform(20_000, seed=2)
        sample = bernoulli_sample(ps, 0.03, seed=5)
        assert 450 <= len(sample) <= 750

    def test_deterministic(self):
        ps = uniform(1000, seed=3)
        a = bernoulli_sample(ps, 0.1, seed=7)
        b = bernoulli_sample(ps, 0.1, seed=7)
        assert np.array_equal(a.ids, b.ids)


class TestIO:
    def test_round_trip(self, tmp_path):
        ps = gaussian_clusters(50, seed=6, name="io")
        path = tmp_path / "pts.txt"
        write_points_text(ps, str(path))
        back = read_points_text(str(path), name="io")
        assert np.array_equal(back.ids, ps.ids)
        assert np.allclose(back.xs, ps.xs)
        assert np.allclose(back.ys, ps.ys)

    def test_parse_point_line(self):
        assert parse_point_line("5,0.25,1.5\n") == (5, 0.25, 1.5)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "pts.txt"
        path.write_text("1,0.5,0.5\n\n2,0.25,0.75\n")
        assert len(read_points_text(str(path))) == 2

    def test_part_files_round_trip(self, tmp_path):
        from repro.data.io import read_points_text_parts, write_points_text_parts

        ps = gaussian_clusters(95, seed=8, name="parts")
        paths = write_points_text_parts(ps, str(tmp_path / "d"), parts=4)
        assert len(paths) == 4
        assert all(p.endswith(f"part-{i:05d}") for i, p in enumerate(paths))
        back = read_points_text_parts(str(tmp_path / "d"), name="parts")
        assert np.array_equal(back.ids, ps.ids)
        assert np.allclose(back.xs, ps.xs)

    def test_part_files_validation(self, tmp_path):
        from repro.data.io import write_points_text_parts

        with pytest.raises(ValueError):
            write_points_text_parts(gaussian_clusters(10, seed=1), str(tmp_path), 0)
