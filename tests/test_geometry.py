"""Unit tests for geometric primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.distance import (
    euclidean,
    euclidean_sq,
    mindist_point_rect,
    within_eps,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Side, SpatialPoint

coords = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestSide:
    def test_other_flips(self):
        assert Side.R.other is Side.S
        assert Side.S.other is Side.R

    def test_double_other_is_identity(self):
        for side in Side:
            assert side.other.other is side

    def test_str(self):
        assert str(Side.R) == "R"
        assert str(Side.S) == "S"


class TestSpatialPoint:
    def test_distance_to(self):
        a = SpatialPoint(1, 0.0, 0.0, Side.R)
        b = SpatialPoint(2, 3.0, 4.0, Side.S)
        assert a.distance_to(b) == pytest.approx(5.0)

    def test_distance_symmetry(self):
        a = SpatialPoint(1, 1.5, -2.0, Side.R)
        b = SpatialPoint(2, -0.5, 7.0, Side.S)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_coords(self):
        p = SpatialPoint(7, 2.5, -1.5, Side.S)
        assert p.coords == (2.5, -1.5)

    def test_serialized_bytes_includes_payload(self):
        assert SpatialPoint(1, 0, 0, Side.R).serialized_bytes() == 24
        assert SpatialPoint(1, 0, 0, Side.R, payload_bytes=100).serialized_bytes() == 124

    def test_frozen(self):
        p = SpatialPoint(1, 0.0, 0.0, Side.R)
        with pytest.raises(AttributeError):
            p.x = 5.0


class TestDistanceFunctions:
    def test_euclidean_known(self):
        assert euclidean(0, 0, 3, 4) == pytest.approx(5.0)

    def test_euclidean_sq_matches(self):
        assert euclidean_sq(1, 2, 4, 6) == pytest.approx(euclidean(1, 2, 4, 6) ** 2)

    def test_within_eps_inclusive(self):
        assert within_eps(0, 0, 3, 4, 5.0)
        assert not within_eps(0, 0, 3, 4, 4.999)

    @given(coords, coords, coords, coords)
    def test_euclidean_non_negative_and_symmetric(self, x1, y1, x2, y2):
        d = euclidean(x1, y1, x2, y2)
        assert d >= 0
        assert d == pytest.approx(euclidean(x2, y2, x1, y1))

    @given(coords, coords)
    def test_identity_of_indiscernibles(self, x, y):
        assert euclidean(x, y, x, y) == 0.0


class TestMBR:
    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            MBR(1, 0, 0, 1)
        with pytest.raises(ValueError):
            MBR(0, 1, 1, 0)

    def test_zero_area_allowed(self):
        point_rect = MBR(1, 1, 1, 1)
        assert point_rect.area == 0

    def test_dimensions(self):
        m = MBR(0, 0, 4, 2)
        assert m.width == 4
        assert m.height == 2
        assert m.area == 8
        assert m.center == (2, 1)

    def test_contains_point_closed(self):
        m = MBR(0, 0, 1, 1)
        assert m.contains_point(0, 0)
        assert m.contains_point(1, 1)
        assert not m.contains_point(1.0001, 0.5)

    def test_contains_point_halfopen(self):
        m = MBR(0, 0, 1, 1)
        assert m.contains_point_halfopen(0, 0)
        assert not m.contains_point_halfopen(1, 0.5)
        assert not m.contains_point_halfopen(0.5, 1)

    def test_intersects_overlap_and_touch(self):
        a = MBR(0, 0, 2, 2)
        assert a.intersects(MBR(1, 1, 3, 3))
        assert a.intersects(MBR(2, 2, 3, 3))  # corner touch counts
        assert not a.intersects(MBR(2.001, 0, 3, 1))

    def test_intersects_symmetric(self):
        a, b = MBR(0, 0, 2, 2), MBR(1, -1, 5, 0.5)
        assert a.intersects(b) == b.intersects(a)

    def test_mindist_inside_is_zero(self):
        assert MBR(0, 0, 2, 2).mindist_point(1, 1) == 0

    def test_mindist_side_and_corner(self):
        m = MBR(0, 0, 2, 2)
        assert m.mindist_point(3, 1) == pytest.approx(1.0)
        assert m.mindist_point(3, 3) == pytest.approx(math.sqrt(2))
        assert m.mindist_point(-3, -4) == pytest.approx(5.0)

    def test_mindist_agrees_with_module_function(self):
        m = MBR(0, 0, 2, 2)
        assert mindist_point_rect(5, 5, m) == m.mindist_point(5, 5)

    def test_expand(self):
        m = MBR(0, 0, 2, 2).expand(0.5)
        assert (m.xmin, m.ymin, m.xmax, m.ymax) == (-0.5, -0.5, 2.5, 2.5)

    def test_union(self):
        u = MBR(0, 0, 1, 1).union(MBR(2, -1, 3, 0.5))
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, -1, 3, 1)

    def test_of_points(self):
        m = MBR.of_points([1, 5, 3], [2, 0, 4])
        assert (m.xmin, m.ymin, m.xmax, m.ymax) == (1, 0, 5, 4)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            MBR.of_points([], [])

    @given(coords, coords, st.floats(0, 100))
    def test_mindist_triangle_consistency(self, x, y, margin):
        # a point's mindist to an expanded rect can only shrink
        m = MBR(-10, -10, 10, 10)
        assert m.expand(margin).mindist_point(x, y) <= m.mindist_point(x, y) + 1e-9
