"""Tests for rectangulations (grid and QuadTree partitions)."""

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters, uniform
from repro.geometry.mbr import MBR
from repro.grid.grid import Grid
from repro.partitioning.rect_partition import (
    GridRectPartition,
    QuadtreeRectPartition,
)

EPS = 0.02


@pytest.fixture(scope="module")
def grid_part():
    return GridRectPartition(Grid(MBR(0, 0, 1, 1), EPS))


@pytest.fixture(scope="module")
def quad_part():
    sample = gaussian_clusters(3000, seed=7)
    return QuadtreeRectPartition(
        MBR(0, 0, 1, 1), EPS, sample.xs, sample.ys, capacity=200
    )


class TestGridPartition:
    def test_validates(self, grid_part):
        grid_part.validate()

    def test_leaf_of_matches_grid(self, grid_part):
        rng = np.random.default_rng(1)
        for x, y in rng.uniform(0, 1, (200, 2)):
            leaf = grid_part.leaf_of(float(x), float(y))
            assert grid_part.leaves[leaf].contains_point(float(x), float(y))

    def test_adjacency_is_eight_neighbourhood(self, grid_part):
        g = grid_part.grid
        interior = g.cell_id(2, 2)
        assert len(grid_part.neighbors(interior)) == 8
        corner = g.cell_id(0, 0)
        assert len(grid_part.neighbors(corner)) == 3

    def test_hazard_corners_are_interior_grid_corners(self, grid_part):
        g = grid_part.grid
        corners = grid_part.hazard_corners()
        assert len(corners) == (g.nx - 1) * (g.ny - 1)

    def test_corner_distance(self, grid_part):
        g = grid_part.grid
        qx, qy = g.corner_coords(1, 1)
        assert grid_part.corner_distance(qx, qy) == pytest.approx(0.0)
        assert grid_part.corner_distance(qx + 0.01, qy) == pytest.approx(0.01)


class TestQuadtreePartition:
    def test_validates(self, quad_part):
        quad_part.validate()

    def test_adaptive_leaf_sizes(self, quad_part):
        sizes = {round(leaf.width, 9) for leaf in quad_part.leaves}
        assert len(sizes) >= 2  # clustered sample forces mixed resolutions

    def test_min_side_respected(self, quad_part):
        for leaf in quad_part.leaves:
            assert leaf.width >= 2 * EPS - 1e-12
            assert leaf.height >= 2 * EPS - 1e-12

    def test_leaf_of_consistent(self, quad_part):
        rng = np.random.default_rng(2)
        for x, y in rng.uniform(0, 1, (300, 2)):
            leaf = quad_part.leaf_of(float(x), float(y))
            assert quad_part.leaves[leaf].contains_point(float(x), float(y))

    def test_leaves_tile_exactly(self, quad_part):
        total = sum(leaf.area for leaf in quad_part.leaves)
        assert total == pytest.approx(1.0)

    def test_adjacency_symmetric(self, quad_part):
        for a, b in quad_part.adjacent_pairs():
            assert a in quad_part.neighbors(b)
            assert b in quad_part.neighbors(a)

    def test_non_touching_leaves_far_apart(self, quad_part):
        """The dyadic gap property the replication rule relies on."""
        leaves = quad_part.leaves
        for i in range(len(leaves)):
            nbrs = set(quad_part.neighbors(i))
            for j in range(len(leaves)):
                if j == i or j in nbrs:
                    continue
                dx = max(leaves[i].xmin - leaves[j].xmax,
                         leaves[j].xmin - leaves[i].xmax, 0.0)
                dy = max(leaves[i].ymin - leaves[j].ymax,
                         leaves[j].ymin - leaves[i].ymax, 0.0)
                assert max(dx, dy) >= 2 * EPS - 1e-9, (i, j)

    def test_hazard_corners_touch_three_leaves(self, quad_part):
        for qx, qy in quad_part.hazard_corners():
            count = sum(
                1 for leaf in quad_part.leaves if leaf.contains_point(qx, qy)
            )
            assert count >= 3

    def test_uniform_sample_single_leaf_when_under_capacity(self):
        sample = uniform(50, seed=3)
        part = QuadtreeRectPartition(
            MBR(0, 0, 1, 1), EPS, sample.xs, sample.ys, capacity=100
        )
        assert part.num_leaves == 1
        assert part.hazard_corners().shape == (0, 2)
        assert part.corner_distance(0.5, 0.5) == float("inf")

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            QuadtreeRectPartition(
                MBR(0, 0, 1, 1), EPS, np.empty(0), np.empty(0), capacity=0
            )

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            GridRectPartition.__mro__  # touch to satisfy linters
            QuadtreeRectPartition(MBR(0, 0, 1, 1), 0.0, np.empty(0), np.empty(0))

    def test_targets_within_eps(self, quad_part):
        # a point near a leaf border must list the across-the-border leaf
        leaf0 = quad_part.leaves[0]
        x = leaf0.xmax - EPS / 2
        y = (leaf0.ymin + leaf0.ymax) / 2
        native = quad_part.leaf_of(x, y)
        targets = quad_part.targets_within_eps(x, y, native)
        assert targets, "expected at least one replication target"
        for t in targets:
            assert quad_part.leaves[t].mindist_point(x, y) <= EPS
