"""Integration and property tests for the generalized (partition-agnostic)
adaptive join -- the paper's QuadTree future-work item."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.generators import gaussian_clusters, real_like, uniform
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)
from repro.verify.oracle import kdtree_pairs

EPS = 0.015


@pytest.fixture(scope="module")
def inputs():
    r = gaussian_clusters(2000, seed=101, name="R")
    s = real_like(2000, seed=11, name="S")
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), EPS)
    return r, s, truth


class TestCorrectness:
    @pytest.mark.parametrize("partition", ["grid", "quadtree"])
    @pytest.mark.parametrize("method", ["lpib", "diff", "uni_r", "uni_s", "clone"])
    def test_matches_oracle(self, inputs, partition, method):
        r, s, truth = inputs
        cfg = GeneralizedJoinConfig(eps=EPS, partition=partition, method=method)
        res = generalized_distance_join(r, s, cfg)
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # duplicate-free

    def test_quadtree_capacity_sweep(self, inputs):
        r, s, truth = inputs
        for capacity in (50, 200, 1000):
            cfg = GeneralizedJoinConfig(
                eps=EPS, partition="quadtree", quadtree_capacity=capacity
            )
            res = generalized_distance_join(r, s, cfg)
            assert res.pairs_set() == truth, capacity

    def test_uniform_data(self):
        r = uniform(800, seed=21)
        s = uniform(800, seed=22)
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.03)
        for partition in ("grid", "quadtree"):
            cfg = GeneralizedJoinConfig(eps=0.03, partition=partition)
            res = generalized_distance_join(r, s, cfg)
            assert res.pairs_set() == truth


class TestAdaptiveGains:
    def test_adaptive_beats_universal_on_quadtree(self, inputs):
        r, s, _ = inputs
        out = {}
        for method in ("lpib", "uni_r", "uni_s", "clone"):
            cfg = GeneralizedJoinConfig(eps=EPS, partition="quadtree", method=method)
            out[method] = generalized_distance_join(r, s, cfg).metrics
        assert out["lpib"].replicated_total < min(
            out["uni_r"].replicated_total, out["uni_s"].replicated_total
        )
        # the clone join replicates roughly both universals combined
        assert out["clone"].replicated_total >= max(
            out["uni_r"].replicated_total, out["uni_s"].replicated_total
        )

    def test_metrics_consistent(self, inputs):
        r, s, _ = inputs
        cfg = GeneralizedJoinConfig(eps=EPS, partition="quadtree")
        m = generalized_distance_join(r, s, cfg).metrics
        assert m.method == "quadtree-lpib"
        assert m.shuffle_records == len(r) + len(s) + m.replicated_total
        assert m.grid_cells == m.num_partitions
        assert m.exec_time_model > 0


class TestConfig:
    def test_bad_partition(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            generalized_distance_join(
                r, s, GeneralizedJoinConfig(eps=EPS, partition="voronoi")
            )

    def test_bad_method(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            generalized_distance_join(
                r, s, GeneralizedJoinConfig(eps=EPS, method="bogus")
            )

    def test_bad_eps(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            generalized_distance_join(r, s, GeneralizedJoinConfig(eps=0.0))


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(100, 600),
    eps=st.floats(0.01, 0.05),
    capacity=st.integers(20, 400),
    method=st.sampled_from(["lpib", "diff", "uni_r", "uni_s"]),
)
def test_property_quadtree_join_correct_and_duplicate_free(
    seed, n, eps, capacity, method
):
    rng = np.random.default_rng(seed)
    from repro.data.pointset import PointSet

    # half clustered, half uniform, to vary the leaf structure
    r = PointSet(
        np.concatenate([rng.uniform(0, 1, n // 2), rng.normal(0.3, 0.05, n - n // 2)]).clip(0, 1),
        np.concatenate([rng.uniform(0, 1, n // 2), rng.normal(0.7, 0.05, n - n // 2)]).clip(0, 1),
        name="r",
    )
    s = PointSet(
        rng.uniform(0, 1, n),
        rng.uniform(0, 1, n),
        name="s",
    )
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), eps)
    cfg = GeneralizedJoinConfig(
        eps=eps, partition="quadtree", method=method,
        quadtree_capacity=capacity, sample_rate=0.5, seed=seed,
    )
    res = generalized_distance_join(r, s, cfg)
    assert res.pairs_set() == truth
    assert len(res) == len(truth)
