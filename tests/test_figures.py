"""Tests for the SVG figure renderer."""

import os

import pytest

from repro.bench.figures import (
    PALETTE,
    _fmt_tick,
    _nice_ticks,
    render_line_chart,
    save_figure,
)


class TestTicks:
    def test_covers_range(self):
        ticks = _nice_ticks(0, 97)
        assert ticks[0] <= 0 and ticks[-1] >= 97

    def test_rounded_steps(self):
        ticks = _nice_ticks(0, 10)
        steps = {round(b - a, 9) for a, b in zip(ticks, ticks[1:])}
        assert len(steps) == 1

    def test_degenerate_range(self):
        ticks = _nice_ticks(5, 5)
        assert len(ticks) >= 2

    def test_fmt_tick(self):
        assert _fmt_tick(0) == "0"
        assert _fmt_tick(1_000_000) == "1e+06"
        assert _fmt_tick(250) == "250"
        assert _fmt_tick(0.5) == "0.5"


class TestRender:
    def test_valid_svg(self):
        svg = render_line_chart(
            "T", "x", "y", [1, 2, 3], {"a": [1, 2, 3], "b": [3, 2, 1]}
        )
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert svg.count("<polyline") == 2
        assert "T" in svg and ">a<" in svg and ">b<" in svg

    def test_log_scale(self):
        svg = render_line_chart(
            "T", "x", "y", [1, 2], {"a": [10, 100_000]}, log_y=True
        )
        assert "1e1" in svg and "1e5" in svg

    def test_log_scale_rejects_non_positive(self):
        with pytest.raises(ValueError):
            render_line_chart("T", "x", "y", [1, 2], {"a": [0, 5]}, log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart("T", "x", "y", [], {})

    def test_none_values_skipped(self):
        svg = render_line_chart("T", "x", "y", [1, 2, 3], {"a": [1, None, 3]})
        assert svg.count("<circle") == 2

    def test_many_series_cycle_palette(self):
        series = {f"s{i}": [i, i + 1] for i in range(len(PALETTE) + 2)}
        svg = render_line_chart("T", "x", "y", [0, 1], series)
        assert svg.count("<polyline") == len(series)

    def test_constant_x_handled(self):
        svg = render_line_chart("T", "x", "y", [5, 5], {"a": [1, 2]})
        assert "<polyline" in svg


class TestBarChart:
    def test_valid_svg(self):
        from repro.bench.figures import render_bar_chart

        svg = render_bar_chart(
            "T", "y", ["a", "b"], {"s1": [1, 2], "s2": [3, 4]}
        )
        assert svg.startswith("<svg")
        assert svg.count("<rect") >= 1 + 4 + 2  # background + bars + legend

    def test_log_scale(self):
        from repro.bench.figures import render_bar_chart

        svg = render_bar_chart("T", "y", ["a"], {"s": [1000]}, log_y=True)
        assert "1e3" in svg

    def test_log_rejects_non_positive(self):
        from repro.bench.figures import render_bar_chart

        with pytest.raises(ValueError):
            render_bar_chart("T", "y", ["a"], {"s": [0]}, log_y=True)

    def test_empty_rejected(self):
        from repro.bench.figures import render_bar_chart

        with pytest.raises(ValueError):
            render_bar_chart("T", "y", [], {})

    def test_save_bar_figure(self, tmp_path):
        from repro.bench.figures import save_bar_figure

        path = save_bar_figure(
            "bars", "T", "y", ["a"], {"s": [2]}, directory=str(tmp_path)
        )
        assert os.path.exists(path)


class TestStackedBarChart:
    def test_valid_svg(self):
        from repro.bench.figures import render_stacked_bar_chart

        svg = render_stacked_bar_chart(
            "T", "y", ["x1", "x2"],
            {"m1": {"a": [1, 2], "b": [3, 4]},
             "m2": {"a": [2, 1], "b": [1, 1]}},
        )
        assert svg.startswith("<svg")
        # 1 background + 2 legend squares + 2 groups x 2 cats x 2 layers bars
        assert svg.count("<rect") >= 11

    def test_layer_legend(self):
        from repro.bench.figures import render_stacked_bar_chart

        svg = render_stacked_bar_chart(
            "T", "y", ["c"], {"g": {"constr": [1], "join": [2]}}
        )
        assert ">constr<" in svg and ">join<" in svg

    def test_empty_rejected(self):
        from repro.bench.figures import render_stacked_bar_chart

        with pytest.raises(ValueError):
            render_stacked_bar_chart("T", "y", [], {})


class TestSave:
    def test_save_figure(self, tmp_path):
        path = save_figure(
            "testfig", "T", "x", "y", [1, 2], {"a": [1, 2]},
            directory=str(tmp_path),
        )
        assert os.path.exists(path)
        with open(path) as f:
            assert f.read().startswith("<svg")
