"""Tests for the high-level public API."""

import numpy as np
import pytest

from repro import ALL_METHODS, spatial_join
from repro.data.generators import gaussian_clusters


class TestSpatialJoin:
    def test_accepts_coordinate_arrays(self):
        r = np.array([[0.1, 0.1], [0.9, 0.9]])
        s = np.array([[0.12, 0.1]])
        res = spatial_join(r, s, eps=0.05, method="uni_r")
        assert res.pairs_set() == {(0, 0)}

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            spatial_join(np.zeros((3, 3)), np.zeros((3, 2)), eps=0.1)

    def test_rejects_unknown_method(self):
        r = gaussian_clusters(50, seed=1)
        with pytest.raises(ValueError):
            spatial_join(r, r, eps=0.01, method="quantum")

    def test_all_methods_agree(self):
        r = gaussian_clusters(600, seed=51)
        s = gaussian_clusters(600, seed=52)
        reference = None
        for method in ALL_METHODS:
            res = spatial_join(r, s, eps=0.02, method=method)
            got = res.pairs_set()
            assert len(res) == len(got), method  # duplicate-free
            if reference is None:
                reference = got
            assert got == reference, method

    def test_options_forwarded(self):
        r = gaussian_clusters(300, seed=53)
        s = gaussian_clusters(300, seed=54)
        res = spatial_join(r, s, eps=0.02, method="lpib", num_workers=5)
        assert res.metrics.num_workers == 5

    def test_naive_metrics(self):
        r = gaussian_clusters(100, seed=55)
        s = gaussian_clusters(100, seed=56)
        res = spatial_join(r, s, eps=0.02, method="naive")
        assert res.metrics.method == "naive"
        assert res.metrics.results == len(res)
