"""Fast performance-regression guards (``-m perfsmoke``, well under 30s).

These run as part of the default tier-1 selection; ``-m perfsmoke``
selects just them.  Thresholds are deliberately loose (3x) so the guard
trips only on a real algorithmic regression -- e.g. the vectorized
``grid_hash_join`` degrading back to per-point Python loops -- and not
on machine noise.
"""

import os
import time

import numpy as np
import pytest

from repro.joins.local import grid_hash_join, plane_sweep_join

EPS = 0.005
N = 20_000


def _cell(seed):
    rng = np.random.default_rng(seed)
    return (
        np.arange(N, dtype=np.int64),
        rng.uniform(0.0, 1.0, N),
        rng.uniform(0.0, 1.0, N),
    )


def _best_of(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


@pytest.mark.perfsmoke
def test_grid_hash_not_slower_than_plane_sweep():
    """grid_hash on a 20k-point cell must stay within 3x of plane_sweep.

    The vectorized grid hash examines far fewer candidates than the
    sweep (eps-bucket neighbourhoods vs. full x-strips), so anything
    beyond 3x means the kernel lost its vectorization.
    """
    r_ids, r_xs, r_ys = _cell(101)
    s_ids, s_xs, s_ys = _cell(102)

    sweep_t, sweep = _best_of(
        lambda: plane_sweep_join(r_ids, r_xs, r_ys, s_ids, s_xs, s_ys, EPS)
    )
    hash_t, hashed = _best_of(
        lambda: grid_hash_join(r_ids, r_xs, r_ys, s_ids, s_xs, s_ys, EPS)
    )

    # identical result pairs, and the hash prunes harder than the sweep
    assert set(zip(hashed[0].tolist(), hashed[1].tolist())) == set(
        zip(sweep[0].tolist(), sweep[1].tolist())
    )
    assert hashed[2] <= sweep[2]

    assert hash_t <= 3.0 * sweep_t, (
        f"vectorized grid_hash took {hash_t:.3f}s vs plane_sweep "
        f"{sweep_t:.3f}s (>3x): vectorization regressed"
    )


@pytest.mark.perfsmoke
def test_grid_hash_scales_subquadratically():
    """Doubling the input must not quadruple grid_hash's runtime 3x over.

    A quadratic (all-pairs) regression would scale ~4x per doubling; the
    bucketed kernel scales near-linearly at fixed eps-density.
    """
    def run_at(n):
        rng = np.random.default_rng(n)
        ids = np.arange(n, dtype=np.int64)
        xs, ys = rng.uniform(0, 1, n), rng.uniform(0, 1, n)
        t, _ = _best_of(lambda: grid_hash_join(ids, xs, ys, ids, xs, ys, EPS))
        return t

    small, large = run_at(N // 2), run_at(N)
    # linear would be ~2x, quadratic ~4x; allow generous noise headroom
    assert large <= 12.0 * max(small, 1e-4), (
        f"grid_hash: {N//2} pts -> {small:.3f}s but {N} pts -> {large:.3f}s"
    )


@pytest.mark.perfsmoke
def test_block_recovery_beats_full_recompute(tmp_path):
    """Fine-grained recovery must cost less than whole-partition recovery.

    Under identical deterministic fetch+kill faults, the block store plus
    per-cell checkpoints must strictly lower the *modelled* recovery time
    (recovery + fetch_retry + block_refetch makespan) versus the legacy
    full-recompute path.  Modelled clocks are deterministic, so unlike the
    wall-time guards above this comparison has no noise headroom at all.
    """
    from repro.data.generators import gaussian_clusters
    from repro.joins.distance_join import JoinConfig, distance_join

    r = gaussian_clusters(800, seed=71, name="R")
    s = gaussian_clusters(800, seed=72, name="S")
    base = dict(
        eps=0.02, method="lpib", num_workers=3, executor_workers=2,
        faults="fetch:p=1:times=1;kill:p=1:times=1", max_retries=3,
    )
    legacy = distance_join(r, s, JoinConfig(**base)).metrics
    stored = distance_join(
        r, s,
        JoinConfig(**base, spill="disk", spill_dir=str(tmp_path),
                   checkpoint_cells=True),
    ).metrics

    # guard against a vacuous pass: both runs actually recovered
    assert legacy.extra["fetch_retries"] > 0
    assert stored.blocks_refetched > 0
    assert stored.cells_salvaged > 0
    assert legacy.recovery_time_model > 0

    assert stored.recovery_time_model < legacy.recovery_time_model, (
        f"block-level recovery ({stored.recovery_time_model:.6f}s modelled) "
        f"did not beat full recompute ({legacy.recovery_time_model:.6f}s)"
    )
    assert stored.extra["refetch_bytes"] < legacy.extra["refetch_bytes"]


@pytest.mark.perfsmoke
@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="parallel speedup guard needs >= 4 host CPUs",
)
def test_parallel_backends_not_slower_than_serial():
    """On a multi-core host, parallel join makespans must not lose to serial.

    Runs the fused columnar path (the default) on a join big enough that
    per-task compute dwarfs dispatch overhead, and compares the measured
    local-join makespan (max over OS workers) across backends, best of
    three.  The 1.1x headroom absorbs scheduler noise; an actual loss
    means the zero-copy task path regressed into serialization-bound
    dispatch.  Skipped below 4 cores, where the premise is false --
    ``BENCH_backend.json`` records the honest single-core numbers.
    """
    from repro.data.generators import gaussian_clusters
    from repro.joins.distance_join import JoinConfig, distance_join

    r = gaussian_clusters(60_000, seed=81, name="R")
    s = gaussian_clusters(60_000, seed=82, name="S")

    def makespan(backend):
        def run():
            cfg = JoinConfig(
                eps=0.01, method="lpib", num_workers=4,
                local_kernel="grid_hash", execution_backend=backend,
                executor_workers=4,
            )
            return distance_join(r, s, cfg).metrics.join_wall_makespan

        best = float("inf")
        for _ in range(3):
            best = min(best, run())
        return best

    serial = makespan("serial")
    for backend in ("threads", "processes"):
        parallel = makespan(backend)
        assert parallel <= 1.1 * serial, (
            f"{backend} join makespan {parallel:.3f}s lost to serial "
            f"{serial:.3f}s on {os.cpu_count()} CPUs"
        )
