"""Property-style tests for recovery accounting invariants.

The chaos matrix in ``test_fault_tolerance.py`` checks specific fault
kinds one at a time; this module sweeps *mixed* fault plans across
seeds, backends (including the real cluster) and both local-join paths
(fused columnar and discrete), asserting the bookkeeping identities
that must hold for ANY run regardless of which injections happened to
fire:

- the answer is always bit-identical to the fault-free serial golden;
- attempt counts, retries and speculation are mutually consistent;
- salvage metrics are zero unless cell checkpoints were enabled;
- refetch counts stay within what was ever spilled (simulated shuffle);
- recovery costs are non-negative, and exactly zero on clean runs.
"""

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters
from repro.engine.faults import FaultPlan
from repro.joins.distance_join import JoinConfig, distance_join
from repro.verify.invariants import validate_join_result

EPS = 0.02
NUM_TASKS = 3  # num_workers below: one executor task per simulated worker

#: Mixed fault plans: probabilistic clauses drawn deterministically from
#: the plan seed, so each (mix, seed) pair is a reproducible scenario.
FAULT_MIXES = {
    "none": None,
    "kill+fetch": "kill:p=0.6:times=1,fetch:p=0.6:times=1",
    "kernel+straggler": (
        "kernel:p=0.6:times=1,straggler:p=0.5:times=1:delay=0.03"
    ),
    "everything": (
        "kill:p=0.4:times=1,kernel:p=0.4:times=1,"
        "straggler:p=0.4:times=1:delay=0.02,fetch:p=0.5:times=1"
    ),
}
SEEDS = (0, 7, 23)


def inputs():
    return (
        gaussian_clusters(420, seed=51, name="R"),
        gaussian_clusters(380, seed=52, name="S"),
    )


_GOLDEN = {}


def golden():
    """Fault-free serial reference, computed once."""
    if "ref" not in _GOLDEN:
        r, s = inputs()
        _GOLDEN["ref"] = distance_join(
            r, s, JoinConfig(eps=EPS, method="lpib", num_workers=NUM_TASKS)
        )
    return _GOLDEN["ref"]


def run_join(mix, seed, backend, fused, tmp_path, checkpoints):
    faults = None
    if FAULT_MIXES[mix] is not None:
        faults = FaultPlan.parse(FAULT_MIXES[mix]).with_seed(seed)
    spill = {}
    if checkpoints:
        spill = dict(
            spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True
        )
    cfg = JoinConfig(
        eps=EPS, method="lpib", num_workers=NUM_TASKS,
        local_kernel="plane_sweep", execution_backend=backend,
        executor_workers=2, fused=fused, faults=faults, max_retries=3,
        **spill,
    )
    r, s = inputs()
    return r, s, distance_join(r, s, cfg)


def check_invariants(res, *, mix, backend, checkpoints):
    """The accounting identities every run must satisfy."""
    m = res.metrics
    tag = (mix, backend, checkpoints)

    # --- result invariance: chaos never changes the answer ------------
    reference = golden()
    assert len(reference) > 0
    assert np.array_equal(res.r_ids, reference.r_ids), tag
    assert np.array_equal(res.s_ids, reference.s_ids), tag

    # --- attempt accounting -------------------------------------------
    assert m.task_attempts >= NUM_TASKS, tag
    assert m.task_retries >= 0 and m.speculative_launched >= 0, tag
    assert m.speculative_wins <= m.speculative_launched, tag
    # every extra attempt is explained by a retry or a speculative copy
    # (the cluster scheduler may additionally re-queue a submission that
    # never reached a daemon, which consumes no attempt)
    assert (
        m.task_attempts <= NUM_TASKS + m.task_retries
        + m.speculative_launched
    ), tag

    # --- recovery cost accounting -------------------------------------
    assert m.recovery_seconds >= 0.0, tag
    assert m.recovery_time_model >= 0.0, tag
    if mix == "none":
        assert m.fault_events == 0, tag
        assert m.task_retries == 0, tag
        assert m.recovery_seconds == 0.0, tag
        assert m.blocks_refetched == 0, tag

    # --- salvage requires checkpoints ---------------------------------
    if not checkpoints:
        assert m.cells_salvaged == 0, tag
    if m.cells_salvaged == 0:
        assert m.salvaged_seconds == 0.0, tag
        assert m.salvaged_time_model == 0.0, tag
    else:
        assert m.blocks_spilled > 0, tag  # checkpoints imply a store

    # --- refetch bounded by what was ever addressable -----------------
    if backend != "cluster":
        # the simulated shuffle can only refetch spilled blocks (each at
        # most once per failed attempt)
        if m.blocks_spilled == 0:
            assert m.blocks_refetched == 0, tag
        else:
            assert m.blocks_refetched <= m.blocks_spilled * 4, tag


@pytest.mark.chaos
@pytest.mark.parametrize("fused", (True, False), ids=("fused", "discrete"))
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mix", sorted(FAULT_MIXES))
def test_invariants_hold_threads(tmp_path, mix, seed, fused):
    r, s, res = run_join(mix, seed, "threads", fused, tmp_path, True)
    check_invariants(res, mix=mix, backend="threads", checkpoints=True)
    check = validate_join_result(res, r, s, EPS)
    assert check.ok, check.issues
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


@pytest.mark.chaos
@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("mix", sorted(FAULT_MIXES))
def test_invariants_hold_without_checkpoints(tmp_path, mix, seed):
    _, _, res = run_join(mix, seed, "threads", True, tmp_path, False)
    check_invariants(res, mix=mix, backend="threads", checkpoints=False)


@pytest.mark.chaos
@pytest.mark.cluster
@pytest.mark.parametrize("fused", (True, False), ids=("fused", "discrete"))
@pytest.mark.parametrize("mix", sorted(FAULT_MIXES))
def test_invariants_hold_cluster(tmp_path, mix, fused):
    """The same identities on the real multi-process cluster, where a
    fired kill is an actual SIGKILL and refetches cross sockets."""
    r, s, res = run_join(mix, 0, "cluster", fused, tmp_path, True)
    check_invariants(res, mix=mix, backend="cluster", checkpoints=True)
    check = validate_join_result(res, r, s, EPS)
    assert check.ok, check.issues
    m = res.metrics
    assert m.extra["cluster_daemons_spawned"] >= 1
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"
