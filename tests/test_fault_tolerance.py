"""Fault-tolerance tests: the fault-plan DSL, the executor's recovery
machinery, and a chaos matrix proving the answer never changes.

The core guarantee under test: with a deterministic
:class:`~repro.engine.faults.FaultPlan` and retries enabled, a faulted
run is **bit-identical** to a fault-free serial run -- on every backend,
with every kernel, for every fault kind.
"""

import os

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters
from repro.engine.executor import RetryPolicy, build_execution_plan, execute_plan
from repro.engine.faults import (
    FaultClause,
    FaultPlan,
    InjectedKernelError,
    RetryBudgetExhausted,
    ShuffleFetchError,
)
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.local import LOCAL_KERNELS
from repro.verify.invariants import validate_join_result

EPS = 0.02
KERNELS = sorted(LOCAL_KERNELS)
BACKENDS = ("serial", "threads", "processes")

#: One canonical spec per fault kind, all firing with certainty on the
#: first attempt so the chaos matrix is not probabilistic.
FAULT_SPECS = {
    "kill": "kill:p=1:times=1",
    "straggler": "straggler:p=1:times=1:delay=0.02",
    "fetch": "fetch:p=1:times=1",
    "kernel": "kernel:p=1:times=1",
}


# ----------------------------------------------------------------------
# FaultPlan DSL
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_roundtrip_through_spec(self):
        spec = "kill:p=0.5:times=2,straggler:worker=3:delay=0.2,fetch,kernel:times=0"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.spec()) == plan
        assert plan.spec() == spec

    def test_aliases_normalize(self):
        plan = FaultPlan.parse("worker_kill,delay,shuffle_fetch,kernel_error")
        assert tuple(c.kind for c in plan.clauses) == (
            "kill", "straggler", "fetch", "kernel",
        )

    def test_decisions_are_deterministic(self):
        a = FaultPlan.parse("kill:p=0.5:times=0", seed=7)
        b = FaultPlan.parse("kill:p=0.5:times=0", seed=7)
        draws = [(k, t) for k in range(20) for t in range(5)]
        assert [a.decide("kill", k, t) for k, t in draws] == [
            b.decide("kill", k, t) for k, t in draws
        ]

    def test_seed_changes_decisions(self):
        base = FaultPlan.parse("kill:p=0.5:times=0")
        reseeded = base.with_seed(99)
        draws = [(k, t) for k in range(50) for t in range(4)]
        fired = [base.decide("kill", k, t) is not None for k, t in draws]
        refired = [reseeded.decide("kill", k, t) is not None for k, t in draws]
        assert fired != refired  # 200 coin flips agreeing would be a miracle
        assert 0 < sum(fired) < len(draws)  # p=0.5 behaves like a coin

    def test_probability_extremes(self):
        never = FaultPlan.parse("kernel:p=0:times=0")
        always = FaultPlan.parse("kernel:p=1:times=0")
        for key in range(10):
            assert never.decide("kernel", key, 0) is None
            assert always.decide("kernel", key, 0) is not None

    def test_times_limits_eligible_attempts(self):
        plan = FaultPlan.parse("kill:p=1:times=2")
        assert plan.decide("kill", 0, 0) is not None
        assert plan.decide("kill", 0, 1) is not None
        assert plan.decide("kill", 0, 2) is None  # survived attempts stay safe

    def test_worker_filter(self):
        plan = FaultPlan.parse("straggler:worker=2:delay=0.1")
        assert plan.decide("straggler", 2, 0) is not None
        assert plan.decide("straggler", 1, 0) is None
        assert plan.straggler_delay(2, 0) == pytest.approx(0.1)
        assert plan.straggler_delay(1, 0) == 0.0

    def test_kind_mismatch_never_fires(self):
        plan = FaultPlan.parse("kill:p=1:times=0")
        assert plan.decide("kernel", 0, 0) is None

    @pytest.mark.parametrize("bad", [
        "explode",                 # unknown kind
        "kill:frequency=2",        # unknown parameter
        "kill:p=lots",             # unparsable value
        "kill:p=1.5",              # probability out of range
        "straggler:delay=-1",      # negative delay
        "kill:times=-2",           # negative times
        "",                        # empty spec
        ",,,",
    ])
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan.parse("kill")
        with pytest.raises(ValueError):
            FaultClause("kill", p=2.0)


# ----------------------------------------------------------------------
# chaos matrix: every (kernel x backend x fault kind) stays bit-identical
# ----------------------------------------------------------------------
def chaos_inputs():
    return (
        gaussian_clusters(420, seed=51, name="R"),
        gaussian_clusters(380, seed=52, name="S"),
    )


def chaos_join(kernel, backend, **overrides):
    r, s = chaos_inputs()
    cfg = JoinConfig(
        eps=EPS,
        method="lpib",
        num_workers=3,
        local_kernel=kernel,
        execution_backend=backend,
        executor_workers=2,
        **overrides,
    )
    return r, s, distance_join(r, s, cfg)


_REFERENCE = {}


def reference_result(kernel):
    """Fault-free serial run, computed once per kernel."""
    if kernel not in _REFERENCE:
        _REFERENCE[kernel] = chaos_join(kernel, "serial")[2]
    return _REFERENCE[kernel]


@pytest.mark.chaos
@pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_chaos_matrix_bit_identical(kernel, backend, fault):
    reference = reference_result(kernel)
    assert len(reference) > 0  # a vacuous matrix proves nothing
    r, s, res = chaos_join(
        kernel, backend, faults=FAULT_SPECS[fault], max_retries=3
    )
    # bit-identical to the fault-free serial run: same arrays, same order
    assert np.array_equal(res.r_ids, reference.r_ids), (kernel, backend, fault)
    assert np.array_equal(res.s_ids, reference.s_ids), (kernel, backend, fault)
    # and independently correct + duplicate-free against the kd-tree oracle
    check = validate_join_result(res, r, s, EPS)
    assert check.ok, check.issues
    m = res.metrics
    assert m.fault_events > 0, "the injected fault never fired"
    if fault in ("kill", "kernel"):
        # failures must have cost extra attempts (retries or speculation)
        assert m.task_retries > 0 or m.speculative_wins > 0
    if fault == "fetch":
        assert m.extra["fetch_retries"] > 0
        assert m.extra["refetch_bytes"] > 0
        assert m.recovery_time_model > 0
    if fault == "straggler":
        assert m.recovery_time_model > 0  # injected delay hits the model


@pytest.mark.chaos
def test_chaos_recovery_metrics_accounted(small_clusters):
    r, s = small_clusters
    cfg = JoinConfig(
        eps=EPS, method="uni_r", num_workers=3, executor_workers=2,
        execution_backend="threads", faults="kernel:p=1:times=1", max_retries=2,
    )
    m = distance_join(r, s, cfg).metrics
    assert m.task_attempts >= m.task_retries + 3  # 3 sim-worker tasks
    assert m.recovery_seconds > 0  # failed attempts + backoff were measured


# ----------------------------------------------------------------------
# executor-level recovery machinery
# ----------------------------------------------------------------------
def make_plan(n=400, seed=9):
    """A 4-cell, 2-simulated-worker plan straight at the executor."""
    rng = np.random.default_rng(seed)
    r = (np.arange(n, dtype=np.int64), rng.uniform(0, 1, n), rng.uniform(0, 1, n))
    s = (np.arange(n, dtype=np.int64), rng.uniform(0, 1, n), rng.uniform(0, 1, n))

    def to_groups(xs, ys):
        cell = (xs > 0.5).astype(np.int64) * 2 + (ys > 0.5).astype(np.int64)
        return {c: np.flatnonzero(cell == c) for c in range(4)}

    return build_execution_plan(
        r, s, to_groups(r[1], r[2]), to_groups(s[1], s[2]),
        {0: 0, 1: 1, 2: 0, 3: 1},
    )


def assert_same_results(a, b):
    assert np.array_equal(a.candidates, b.candidates)
    for x, y in zip(a.pair_r, b.pair_r):
        assert np.array_equal(x, y)
    for x, y in zip(a.pair_s, b.pair_s):
        assert np.array_equal(x, y)


class TestExecutorRecovery:
    def test_fault_free_run_is_clean(self):
        plan = make_plan()
        report = execute_plan(plan, "grid_hash", EPS, backend="serial")
        assert report.attempts == 2  # one per simulated-worker group
        assert report.retries == 0
        assert report.recovery_seconds == 0.0
        assert report.fault_events == []
        assert not report.degraded

    def test_worker_crash_survives_on_processes(self):
        """A really-dying pool worker (os._exit in the child) must not
        fail the join: the pool is rebuilt and the task re-executed."""
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="processes", max_workers=2,
            faults=FaultPlan.parse("kill:p=1:times=1"),
            retry=RetryPolicy(max_retries=3, backoff_base=0.0),
        )
        assert_same_results(ref, report)
        assert report.attempts > 2
        assert report.pool_rebuilds >= 1
        assert not report.degraded

    @pytest.mark.parametrize("backend", ("serial", "threads"))
    def test_injected_kill_retried(self, backend):
        plan = make_plan()
        ref = execute_plan(plan, "plane_sweep", EPS, backend="serial")
        report = execute_plan(
            plan, "plane_sweep", EPS, backend=backend, max_workers=2,
            faults=FaultPlan.parse("kill:p=1:times=1"),
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        assert_same_results(ref, report)
        assert report.attempts == 4  # 2 tasks, each died once
        assert report.recovery_seconds > 0

    def test_degradation_chain_ends_on_serial(self):
        """Zero retry budget: each tier gets one shot, the fault plan
        kills attempts 0 and 1, so only the serial tier's attempt 2
        succeeds -- after walking processes -> threads -> serial."""
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="processes", max_workers=2,
            faults=FaultPlan.parse("kill:p=1:times=2"),
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        assert_same_results(ref, report)
        assert report.degraded == ["threads", "serial"]
        assert report.backend_used == "serial"

    def test_budget_exhausted_without_degradation(self):
        plan = make_plan()
        with pytest.raises(RetryBudgetExhausted, match="threads"):
            execute_plan(
                plan, "grid_hash", EPS, backend="threads", max_workers=2,
                faults=FaultPlan.parse("kernel:p=1:times=0"),
                retry=RetryPolicy(max_retries=1, backoff_base=0.0, degrade=False),
            )

    def test_kernel_fault_surfaces_original_error(self):
        plan = make_plan()
        with pytest.raises(RetryBudgetExhausted) as exc:
            execute_plan(
                plan, "plane_sweep", EPS, backend="serial",
                faults=FaultPlan.parse("kernel:p=1:times=0"),
                retry=RetryPolicy(max_retries=0, backoff_base=0.0, degrade=False),
            )
        assert isinstance(exc.value.__cause__, InjectedKernelError)

    def test_speculative_copy_wins_over_straggler(self):
        """One simulated worker sleeps far past the straggler threshold;
        the speculative duplicate finishes first and its result is kept."""
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="threads", max_workers=2,
            faults=FaultPlan.parse("straggler:worker=0:delay=0.6:times=1"),
            retry=RetryPolicy(max_retries=2, task_timeout=0.05),
        )
        assert_same_results(ref, report)
        assert report.speculative_launched >= 1
        assert report.speculative_wins >= 1

    def test_shm_segments_released_when_worker_raises(self):
        """Regression: a raising pool worker must not leak the shared
        memory blocks the plan was published through."""
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        plan = make_plan()
        with pytest.raises(RetryBudgetExhausted):
            execute_plan(
                plan, "grid_hash", EPS, backend="processes", max_workers=2,
                faults=FaultPlan.parse("kernel:p=1:times=0"),
                retry=RetryPolicy(max_retries=1, backoff_base=0.0, degrade=False),
            )
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith(("psm_", "repro_"))
        }
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_shm_segments_released_after_crash_recovery(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        before = set(os.listdir("/dev/shm"))
        plan = make_plan()
        execute_plan(
            plan, "grid_hash", EPS, backend="processes", max_workers=2,
            faults=FaultPlan.parse("kill:p=1:times=1"),
            retry=RetryPolicy(max_retries=3, backoff_base=0.0),
        )
        leaked = {
            name for name in set(os.listdir("/dev/shm")) - before
            if name.startswith(("psm_", "repro_"))
        }
        assert not leaked, f"leaked shared-memory segments: {leaked}"

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(task_timeout=0.0)
        policy = RetryPolicy(backoff_base=0.01, backoff_factor=2.0, backoff_cap=0.03)
        assert policy.backoff(0) == pytest.approx(0.01)
        assert policy.backoff(1) == pytest.approx(0.02)
        assert policy.backoff(5) == pytest.approx(0.03)  # capped


# ----------------------------------------------------------------------
# driver-level fetch failures
# ----------------------------------------------------------------------
class TestShuffleFetchFaults:
    def test_fetch_retries_charge_model_not_results(self, small_clusters):
        r, s = small_clusters
        clean = distance_join(r, s, JoinConfig(eps=EPS, method="lpib"))
        faulted = distance_join(
            r, s,
            JoinConfig(eps=EPS, method="lpib", faults="fetch:p=1:times=1",
                       max_retries=2),
        )
        assert np.array_equal(faulted.r_ids, clean.r_ids)
        assert np.array_equal(faulted.s_ids, clean.s_ids)
        assert faulted.metrics.extra["fetch_retries"] > 0
        # re-reads are accounted apart from the paper's remote-read figures
        assert faulted.metrics.remote_bytes == clean.metrics.remote_bytes
        assert faulted.metrics.construction_time_model > (
            clean.metrics.construction_time_model
        )

    def test_fetch_budget_exhausted_raises(self, small_clusters):
        r, s = small_clusters
        cfg = JoinConfig(eps=EPS, method="lpib", faults="fetch:p=1:times=0",
                         max_retries=0)
        with pytest.raises(ShuffleFetchError):
            distance_join(r, s, cfg)


# ----------------------------------------------------------------------
# chaos matrix with the block store and checkpointing enabled: the same
# bit-identity guarantee must hold when recovery is fine-grained, and
# every spill file must be gone when the job returns
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_chaos_matrix_with_block_store(tmp_path, kernel, backend, fault):
    reference = reference_result(kernel)
    assert len(reference) > 0
    r, s, res = chaos_join(
        kernel, backend, faults=FAULT_SPECS[fault], max_retries=3,
        spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
    )
    assert np.array_equal(res.r_ids, reference.r_ids), (kernel, backend, fault)
    assert np.array_equal(res.s_ids, reference.s_ids), (kernel, backend, fault)
    check = validate_join_result(res, r, s, EPS)
    assert check.ok, check.issues
    m = res.metrics
    assert m.fault_events > 0, "the injected fault never fired"
    assert m.blocks_spilled > 0  # map outputs became addressable blocks
    if fault in ("kill", "kernel"):
        # the retried attempts salvaged the cells finished before the fault
        assert m.cells_salvaged > 0, (kernel, backend, fault)
        assert m.salvaged_time_model > 0
    if fault == "fetch":
        # recovery pulled blocks, not whole partitions
        assert m.blocks_refetched > 0
        assert m.extra["refetch_bytes"] > 0
        assert m.recovery_time_model > 0
    # leak check: every spilled block and checkpoint is released on return
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


@pytest.mark.chaos
@pytest.mark.parametrize("backend", BACKENDS)
def test_block_refetch_bytes_strictly_lower(tmp_path, backend):
    """Under identical fetch faults the block store must refetch strictly
    fewer bytes (and strictly less modelled recovery time) than the legacy
    whole-partition re-read."""
    fault = FAULT_SPECS["fetch"]
    no_store = chaos_join("plane_sweep", backend, faults=fault,
                          max_retries=3)[2].metrics
    stored = chaos_join("plane_sweep", backend, faults=fault, max_retries=3,
                        spill="disk", spill_dir=str(tmp_path),
                        checkpoint_cells=True)[2].metrics
    assert stored.extra["refetch_bytes"] > 0  # recovery did happen
    assert stored.extra["refetch_bytes"] < no_store.extra["refetch_bytes"]
    assert stored.recovery_time_model < no_store.recovery_time_model
    assert stored.blocks_refetched > 0
    assert no_store.blocks_refetched == 0


# ----------------------------------------------------------------------
# chaos beyond the point driver: the object and generalized joins share
# the staged pipeline, so the same bit-identity guarantee must hold for
# them -- including with the block store and cell checkpoints enabled
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
def test_chaos_object_join_bit_identical(tmp_path, fault):
    from repro.data.object_generators import random_boxes
    from repro.geometry.point import Side
    from repro.joins.object_join import ObjectSet, object_distance_join

    r = ObjectSet(random_boxes(180, Side.R, seed=11), "R")
    s = ObjectSet(random_boxes(180, Side.S, seed=22), "S")
    reference = object_distance_join(r, s, 0.01, num_workers=3)
    assert len(reference) > 0
    res = object_distance_join(
        r, s, 0.01, num_workers=3,
        execution_backend="threads", executor_workers=2,
        faults=FAULT_SPECS[fault], max_retries=3,
        spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
    )
    assert res.pairs_set() == reference.pairs_set(), fault
    m = res.metrics
    assert m.fault_events > 0, "the injected fault never fired"
    assert m.blocks_spilled > 0
    if fault in ("kill", "kernel"):
        # either the resubmit cost extra attempts or the checkpoints
        # salvaged every cell the killed attempt had finished
        assert (
            m.task_retries > 0 or m.speculative_wins > 0
            or m.cells_salvaged > 0
        )
    if fault == "fetch":
        assert m.blocks_refetched > 0
        assert m.extra["refetch_bytes"] > 0
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


@pytest.mark.chaos
@pytest.mark.parametrize("fault", sorted(FAULT_SPECS))
def test_chaos_generalized_join_bit_identical(tmp_path, fault):
    from repro.data.generators import real_like
    from repro.joins.generalized_join import (
        GeneralizedJoinConfig,
        generalized_distance_join,
    )

    r = gaussian_clusters(260, seed=101, name="R")
    s = real_like(260, seed=11, name="S")
    base = dict(eps=EPS, partition="quadtree", method="lpib", num_workers=3)
    reference = generalized_distance_join(r, s, GeneralizedJoinConfig(**base))
    assert len(reference) > 0
    res = generalized_distance_join(
        r, s,
        GeneralizedJoinConfig(
            **base, execution_backend="threads", executor_workers=2,
            faults=FAULT_SPECS[fault], max_retries=3,
            spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
        ),
    )
    assert res.pairs_set() == reference.pairs_set(), fault
    m = res.metrics
    assert m.fault_events > 0, "the injected fault never fired"
    assert m.blocks_spilled > 0
    if fault in ("kill", "kernel"):
        # either the resubmit cost extra attempts or the checkpoints
        # salvaged every cell the killed attempt had finished
        assert (
            m.task_retries > 0 or m.speculative_wins > 0
            or m.cells_salvaged > 0
        )
    if fault == "fetch":
        assert m.blocks_refetched > 0
        assert m.extra["refetch_bytes"] > 0
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


@pytest.mark.chaos
@pytest.mark.parametrize("abort_faults, expected", [
    ("kernel:p=1:times=0", RetryBudgetExhausted),  # join never finishes
    ("fetch:p=1:times=0", ShuffleFetchError),      # shuffle never heals
])
def test_spill_dir_clean_after_abort(tmp_path, abort_faults, expected):
    """Temp-resource cleanup on abort paths: a job that dies mid-spill
    must still release every block and checkpoint file."""
    r, s = chaos_inputs()
    cfg = JoinConfig(
        eps=EPS, method="lpib", num_workers=3, executor_workers=2,
        execution_backend="threads", local_kernel="plane_sweep",
        spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
        faults=abort_faults, max_retries=1, degrade=False,
    )
    with pytest.raises(expected):
        distance_join(r, s, cfg)
    assert list(tmp_path.iterdir()) == [], "abort leaked spill files"
