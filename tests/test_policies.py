"""Unit tests for agreement-instantiation policies (Sect. 4.3)."""

import numpy as np
import pytest

from repro.agreements.policies import (
    DiffPolicy,
    LPiBPolicy,
    UniformPolicy,
    instantiate_pair_types,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.grid.statistics import GridStatistics


@pytest.fixture
def grid():
    return Grid(MBR(0, 0, 5, 5), eps=1.0)  # 2x2


def add(stats, side, coords):
    xs = np.array([c[0] for c in coords], dtype=float)
    ys = np.array([c[1] for c in coords], dtype=float)
    stats.add_points(xs, ys, side)


class TestLPiB:
    def test_picks_fewer_boundary_candidates(self, grid):
        stats = GridStatistics(grid)
        a, b = grid.cell_id(0, 0), grid.cell_id(1, 0)
        # 3 R candidates in the shared strips, 1 S candidate
        add(stats, Side.R, [(2.0, 1.0), (2.2, 0.5), (2.8, 1.2)])
        add(stats, Side.S, [(2.9, 0.4)])
        assert LPiBPolicy().decide(stats, a, b) is Side.S

    def test_ignores_interior_points(self, grid):
        stats = GridStatistics(grid)
        a, b = grid.cell_id(0, 0), grid.cell_id(1, 0)
        # many interior R points, but only strip points count
        add(stats, Side.R, [(0.5, 0.5), (0.6, 1.0), (1.0, 1.2), (2.1, 1.0)])
        add(stats, Side.S, [(2.0, 0.5), (2.9, 1.1)])
        assert LPiBPolicy().decide(stats, a, b) is Side.R

    def test_tie_prefers_r(self, grid):
        stats = GridStatistics(grid)
        a, b = grid.cell_id(0, 0), grid.cell_id(1, 0)
        assert LPiBPolicy().decide(stats, a, b) is Side.R

    def test_diagonal_pair_uses_corner_counts(self, grid):
        stats = GridStatistics(grid)
        a, d = grid.cell_id(0, 0), grid.cell_id(1, 1)
        # R point near the shared corner (2.5, 2.5); S point near it too but
        # in the strip only (outside the quarter disc)
        add(stats, Side.R, [(2.2, 2.2), (2.4, 2.4)])
        add(stats, Side.S, [(2.6, 2.7)])
        assert LPiBPolicy().decide(stats, a, d) is Side.S


class TestDiff:
    def test_greater_difference_cell_decides(self, grid):
        stats = GridStatistics(grid)
        a, b = grid.cell_id(0, 0), grid.cell_id(1, 0)
        # cell a: 1 R vs 3 S (diff 2); cell b: 2 R vs 2 S (diff 0)
        add(stats, Side.R, [(1.0, 1.0)])
        add(stats, Side.S, [(0.5, 0.5), (1.0, 0.5), (1.5, 1.5)])
        add(stats, Side.R, [(3.0, 1.0), (4.0, 1.0)])
        add(stats, Side.S, [(3.5, 1.0), (4.4, 0.5)])
        # cell a decides; its minority set is R
        assert DiffPolicy().decide(stats, a, b) is Side.R

    def test_example_4_3_policies_diverge(self, grid):
        """Example 4.3 of the paper, cells A and D (diagonal pair).

        The replication area holds 2 S candidates (s3, s7) and 3 R
        candidates (r1, r7, r8), so LPiB agrees on S; but cell A has the
        greater count difference (|1 R - 3 S| = 2 vs |2 R - 2 S| = 0) and
        its minority set is R, so DIFF agrees on R.
        """
        stats = GridStatistics(grid)
        a, d = grid.cell_id(0, 0), grid.cell_id(1, 1)
        # cell A: r1 near the corner; s3 near the corner, s1, s2 away
        add(stats, Side.R, [(2.3, 2.3)])
        add(stats, Side.S, [(2.2, 2.2), (0.4, 0.6), (1.2, 0.4)])
        # cell D: r7, r8 near the corner; s7 near the corner, s8 away
        add(stats, Side.R, [(2.7, 2.7), (2.9, 2.6)])
        add(stats, Side.S, [(2.8, 2.8), (4.4, 4.0)])
        assert stats.pair_candidates(a, d, Side.R) == 3
        assert stats.pair_candidates(a, d, Side.S) == 2
        assert LPiBPolicy().decide(stats, a, d) is Side.S
        assert DiffPolicy().decide(stats, a, d) is Side.R

    def test_minority_tie_prefers_r(self, grid):
        stats = GridStatistics(grid)
        a, b = grid.cell_id(0, 0), grid.cell_id(1, 0)
        add(stats, Side.R, [(1.0, 1.0)])
        add(stats, Side.S, [(1.2, 1.2)])
        assert DiffPolicy().decide(stats, a, b) is Side.R


class TestUniform:
    def test_always_same_side(self, grid):
        stats = GridStatistics(grid)
        add(stats, Side.R, [(2.0, 1.0)] * 5)
        policy = UniformPolicy(Side.S)
        for a, b, _k in grid.adjacent_pairs():
            assert policy.decide(stats, a, b) is Side.S

    def test_name(self):
        assert UniformPolicy(Side.R).name == "uni_r"
        assert UniformPolicy(Side.S).name == "uni_s"


class TestInstantiate:
    def test_covers_every_adjacent_pair(self, grid4x4):
        stats = GridStatistics(grid4x4)
        types = instantiate_pair_types(grid4x4, stats, UniformPolicy(Side.R))
        expected = {frozenset(p[:2]) for p in grid4x4.adjacent_pairs()}
        assert set(types) == expected
        assert all(t is Side.R for t in types.values())

    def test_policy_names(self):
        assert LPiBPolicy().name == "lpib"
        assert DiffPolicy().name == "diff"
