"""Tests for the distance-based query operators (kNN join, closest pairs,
self-join)."""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.data.generators import gaussian_clusters, uniform
from repro.joins.queries import closest_pairs, knn_join, self_join
from repro.verify.oracle import kdtree_pairs


@pytest.fixture(scope="module")
def sets():
    r = gaussian_clusters(800, seed=81, name="R")
    s = gaussian_clusters(1200, seed=82, name="S")
    return r, s


def oracle_knn(r, s, k):
    """Ground-truth kNN join via a KD-tree, ties broken by S id."""
    tree = cKDTree(np.column_stack([s.xs, s.ys]))
    out = {}
    for pid, x, y in r.iter_triples():
        dists, idx = tree.query([x, y], k=min(k, len(s)))
        dists = np.atleast_1d(dists)
        idx = np.atleast_1d(idx)
        ranked = sorted(
            (float(d), int(s.ids[j])) for d, j in zip(dists, idx)
        )
        out[pid] = ranked
    return out


class TestKnnJoin:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_oracle(self, sets, k):
        r, s = sets
        res = knn_join(r, s, k, sample_rate=0.2)
        truth = oracle_knn(r, s, k)
        got: dict[int, list] = {}
        for rid, sid, d in zip(res.r_ids, res.s_ids, res.distances):
            got.setdefault(int(rid), []).append((float(d), int(sid)))
        assert set(got) == set(truth)
        for pid, ranked in truth.items():
            mine = sorted(got[pid])
            assert len(mine) == len(ranked), pid
            # distances must agree exactly (ties may swap equal-distance ids)
            assert np.allclose([d for d, _ in mine], [d for d, _ in ranked]), pid

    def test_exactly_k_results_per_point(self, sets):
        r, s = sets
        res = knn_join(r, s, 4, sample_rate=0.2)
        counts = np.bincount(
            np.searchsorted(np.sort(r.ids), res.r_ids), minlength=len(r)
        )
        assert (counts == 4).all()

    def test_k_larger_than_s(self):
        r = uniform(30, seed=1, name="r")
        s = uniform(5, seed=2, name="s")
        res = knn_join(r, s, 50)
        assert len(res) == 30 * 5
        assert res.extra["k"] == 5

    def test_k_validation(self, sets):
        r, s = sets
        with pytest.raises(ValueError):
            knn_join(r, s, 0)

    def test_metrics_accumulate(self, sets):
        r, s = sets
        res = knn_join(r, s, 3, sample_rate=0.2)
        assert res.rounds >= 1
        assert res.exec_time_model > 0
        assert res.shuffle_bytes > 0


class TestClosestPairs:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_matches_oracle(self, sets, k):
        r, s = sets
        res = closest_pairs(r, s, k, sample_rate=0.2)
        assert len(res) == k
        # oracle: k smallest pair distances
        tree = cKDTree(np.column_stack([s.xs, s.ys]))
        dists, _ = tree.query(np.column_stack([r.xs, r.ys]), k=min(k, len(s)))
        all_pairs = kdtree_pairs(
            list(r.iter_triples()), list(s.iter_triples()), float(res.distances.max()) + 1e-9
        )
        assert res.pairs_set() <= all_pairs
        # distances sorted ascending and globally minimal
        assert (np.diff(res.distances) >= -1e-12).all()
        brute = sorted(
            np.hypot(r.xs[i] - s.xs[j], r.ys[i] - s.ys[j])
            for i in range(len(r))
            for j in range(len(s))
        )[:k]
        assert np.allclose(np.sort(res.distances), brute)

    def test_expands_radius_when_estimate_too_small(self):
        # a single far-apart pair forces several expansion rounds
        r = uniform(200, seed=5, name="r")
        s = uniform(200, seed=6, name="s")
        res = closest_pairs(r, s, 150, sample_rate=0.5)
        assert len(res) == 150

    def test_validation(self, sets):
        r, s = sets
        with pytest.raises(ValueError):
            closest_pairs(r, s, 0)


class TestSelfJoin:
    def test_matches_oracle_unordered(self):
        pts = gaussian_clusters(600, seed=9, name="P")
        eps = 0.02
        res = self_join(pts, eps)
        triples = list(pts.iter_triples())
        truth = {
            (a, b)
            for a, b in kdtree_pairs(triples, triples, eps)
            if a < b
        }
        assert res.pairs_set() == truth

    def test_no_self_pairs(self):
        pts = uniform(200, seed=10, name="P")
        res = self_join(pts, 0.05)
        assert (res.r_ids != res.s_ids).all()
        assert (res.r_ids < res.s_ids).all()

    def test_distances_within_eps(self):
        pts = uniform(300, seed=11, name="P")
        res = self_join(pts, 0.04)
        assert (res.distances <= 0.04 + 1e-12).all()
