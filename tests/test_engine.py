"""Unit tests for the simulated cluster, shuffle accounting, partitioners
and the LPT scheduler."""

import numpy as np
import pytest

from repro.engine.cluster import SimCluster
from repro.engine.lpt import lpt_assignment, makespan
from repro.engine.metrics import CostModel, JoinMetrics, PhaseTimer
from repro.engine.partitioner import ExplicitPartitioner, HashPartitioner
from repro.engine.shuffle import ShuffleStats


class TestHashPartitioner:
    def test_range(self):
        p = HashPartitioner(7)
        assert all(0 <= p.of(k) < 7 for k in range(100))

    def test_vectorized_matches_scalar(self):
        p = HashPartitioner(13)
        keys = np.arange(200, dtype=np.int64)
        assert (p.of_array(keys) == [p.of(int(k)) for k in keys]).all()

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            HashPartitioner(0)


class TestExplicitPartitioner:
    def test_mapping_and_fallback(self):
        p = ExplicitPartitioner({5: 2, 9: 0}, 4)
        assert p.of(5) == 2
        assert p.of(9) == 0
        assert p.of(6) == 6 % 4  # fallback

    def test_vectorized_matches_scalar(self):
        p = ExplicitPartitioner({2: 3, 17: 1, 40: 0}, 5)
        keys = np.arange(60, dtype=np.int64)
        assert (p.of_array(keys) == [p.of(int(k)) for k in keys]).all()

    def test_out_of_range_target_rejected(self):
        with pytest.raises(ValueError):
            ExplicitPartitioner({1: 9}, 4)

    def test_empty_assignment(self):
        p = ExplicitPartitioner({}, 3)
        keys = np.array([0, 1, 5], dtype=np.int64)
        assert (p.of_array(keys) == keys % 3).all()


class TestLPT:
    def test_balances_better_than_hash(self):
        rng = np.random.default_rng(0)
        costs = {i: float(c) for i, c in enumerate(rng.zipf(1.6, 60))}
        n_parts = 6
        lpt = lpt_assignment(costs, n_parts)
        hash_assign = {k: k % n_parts for k in costs}
        assert max(makespan(costs, lpt, n_parts)) <= max(
            makespan(costs, hash_assign, n_parts)
        )

    def test_classic_approximation_instance(self):
        # LPT yields 10 here while the optimum is 9 ({5,4} vs {3,3,3}) --
        # within the classic 4/3 - 1/(3m) bound.
        costs = {0: 5.0, 1: 4.0, 2: 3.0, 3: 3.0, 4: 3.0}
        loads = makespan(costs, lpt_assignment(costs, 2), 2)
        assert max(loads) == 10.0
        assert max(loads) <= 9.0 * (4 / 3 - 1 / 6)

    def test_deterministic(self):
        costs = {i: float(i % 7) for i in range(40)}
        assert lpt_assignment(costs, 4) == lpt_assignment(costs, 4)

    def test_all_partitions_used_when_enough_keys(self):
        costs = {i: 1.0 for i in range(20)}
        assert set(lpt_assignment(costs, 5).values()) == set(range(5))

    def test_invalid_partitions(self):
        with pytest.raises(ValueError):
            lpt_assignment({0: 1.0}, 0)

    def test_empty_costs(self):
        assert lpt_assignment({}, 3) == {}


class TestShuffleStats:
    def test_add_transfers(self):
        s = ShuffleStats()
        src = np.array([0, 0, 1, 2])
        dst = np.array([0, 1, 1, 0])
        s.add_transfers(src, dst, record_bytes=10)
        assert s.records == 4
        assert s.bytes == 40
        assert s.remote_records == 2
        assert s.remote_bytes == 20

    def test_add_single(self):
        s = ShuffleStats()
        s.add_single(0, 0, 5)
        s.add_single(0, 1, 5)
        assert (s.records, s.remote_records) == (2, 1)
        assert (s.bytes, s.remote_bytes) == (10, 5)

    def test_merge(self):
        a, b = ShuffleStats(), ShuffleStats()
        a.add_single(0, 1, 7)
        b.add_single(1, 1, 3)
        a.merge(b)
        assert a.records == 2
        assert a.bytes == 10
        assert a.remote_bytes == 7


class TestSimCluster:
    def test_round_robin_placement(self):
        c = SimCluster(4)
        assert [c.worker_of_partition(p) for p in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_makespan_is_max(self):
        c = SimCluster(3)
        c.add_cost(0, "join", 1.0)
        c.add_cost(1, "join", 5.0)
        c.add_cost(1, "map", 2.0)
        assert c.phase_makespan("join") == 5.0
        assert c.phase_makespan("join", "map") == 7.0
        assert c.phase_loads("join") == [1.0, 5.0, 0.0]

    def test_reset(self):
        c = SimCluster(2)
        c.add_cost(0, "join", 1.0)
        c.reset()
        assert c.phase_makespan("join") == 0.0

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimCluster(0)


class TestMetrics:
    def test_replicated_total(self):
        m = JoinMetrics(replicated_r=3, replicated_s=4)
        assert m.replicated_total == 7

    def test_exec_time_model(self):
        m = JoinMetrics(construction_time_model=1.5, join_time_model=2.5)
        assert m.exec_time_model == 4.0

    def test_selectivity(self):
        m = JoinMetrics(input_r=100, input_s=200, results=50)
        assert m.selectivity == pytest.approx(50 / 20000)
        assert JoinMetrics().selectivity == 0.0

    def test_summary_contains_key_fields(self):
        m = JoinMetrics(method="lpib", results=10)
        assert "lpib" in m.summary()

    def test_phase_timer(self):
        t = PhaseTimer()
        t.start("a")
        t.start("b")  # implicitly stops "a"
        t.stop()
        assert set(t.phases) == {"a", "b"}
        assert t.total() >= 0

    def test_cost_model_frozen(self):
        cm = CostModel()
        with pytest.raises(AttributeError):
            cm.compare_cost = 1.0

    def test_wall_total(self):
        m = JoinMetrics(wall_times={"a": 1.0, "b": 0.5})
        assert m.wall_total == pytest.approx(1.5)

    def test_marking_report_merge(self):
        from repro.agreements.marking import MarkingReport

        a = MarkingReport(quartets=1, mixed_triangles=2, marked_edges=1)
        b = MarkingReport(quartets=2, mixed_triangles=1, repaired_triangles=1)
        a.merge(b)
        assert (a.quartets, a.mixed_triangles, a.marked_edges, a.repaired_triangles) == (
            3, 3, 1, 1,
        )
