"""Tests for broadcast-variable size modelling."""

import pytest

from repro.agreements.marking import generate_duplicate_free_graph
from repro.data.generators import gaussian_clusters
from repro.engine.broadcast import (
    BroadcastCost,
    agreement_broadcast_bytes,
    broadcast_cost,
    grid_broadcast_bytes,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.joins.distance_join import JoinConfig, distance_join
from tests.conftest import make_graph


class TestSizes:
    def test_grid_broadcast_scales_with_cells(self):
        small = grid_broadcast_bytes(Grid(MBR(0, 0, 10, 10), 1.0))
        large = grid_broadcast_bytes(Grid(MBR(0, 0, 100, 100), 1.0))
        assert large > small

    def test_agreement_broadcast_exceeds_bare_grid(self, grid4x4):
        graph = make_graph(grid4x4, Side.R)
        generate_duplicate_free_graph(graph)
        assert agreement_broadcast_bytes(graph) > grid_broadcast_bytes(grid4x4)

    def test_agreement_broadcast_counts_edges(self, grid4x4):
        graph = make_graph(grid4x4, Side.R)
        size = agreement_broadcast_bytes(graph)
        # 9 quartets x 12 edges at 24B each must be included
        assert size >= 9 * 12 * 24


class TestCost:
    def test_total_bytes_excludes_driver(self):
        cost = broadcast_cost(1000, num_workers=4)
        assert cost.total_bytes == 3000

    def test_single_worker_free(self):
        assert broadcast_cost(1000, num_workers=1).total_bytes == 0

    def test_time_model_is_one_payload(self):
        cost = BroadcastCost(10_000, 8)
        assert cost.time_model(1e-8) == pytest.approx(1e-4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            broadcast_cost(-1, 2)


class TestDriverIntegration:
    def test_metrics_carry_broadcast_bytes(self):
        r = gaussian_clusters(800, seed=1)
        s = gaussian_clusters(800, seed=2)
        adaptive = distance_join(r, s, JoinConfig(eps=0.02, method="lpib")).metrics
        uni = distance_join(r, s, JoinConfig(eps=0.02, method="uni_r")).metrics
        assert adaptive.extra["broadcast_bytes"] > uni.extra["broadcast_bytes"] > 0
