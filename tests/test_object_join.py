"""Integration tests for object joins (the Sect. 8 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.object_generators import (
    random_boxes,
    random_polygons,
    random_polylines,
)
from repro.geometry.objects import objects_intersect
from repro.geometry.point import Side
from repro.joins.object_join import (
    ObjectSet,
    object_distance_join,
    object_intersection_join,
)

EPS = 0.01


def brute_distance(r_objs, s_objs, eps):
    return {
        (a.pid, b.pid)
        for a in r_objs
        for b in s_objs
        if a.distance_to(b) <= eps
    }


def brute_intersection(r_objs, s_objs):
    return {
        (a.pid, b.pid) for a in r_objs for b in s_objs if objects_intersect(a, b)
    }


@pytest.fixture(scope="module")
def box_sets():
    r = random_boxes(500, Side.R, seed=11)
    s = random_boxes(500, Side.S, seed=22)
    return ObjectSet(r, "boxesR"), ObjectSet(s, "boxesS"), r, s


@pytest.fixture(scope="module")
def mixed_sets():
    r = random_polygons(400, Side.R, seed=31)
    s = random_polylines(400, Side.S, seed=42)
    return ObjectSet(r, "polys"), ObjectSet(s, "lines"), r, s


class TestDistanceJoin:
    @pytest.mark.parametrize("method", ["lpib", "diff", "uni_r", "uni_s", "eps_grid"])
    def test_boxes_match_brute_force(self, box_sets, method):
        r, s, r_objs, s_objs = box_sets
        truth = brute_distance(r_objs, s_objs, EPS)
        res = object_distance_join(r, s, EPS, method=method)
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # duplicate-free

    def test_polygons_vs_polylines(self, mixed_sets):
        r, s, r_objs, s_objs = mixed_sets
        truth = brute_distance(r_objs, s_objs, EPS)
        res = object_distance_join(r, s, EPS, method="lpib")
        assert res.pairs_set() == truth

    def test_sides_can_be_swapped(self, box_sets):
        r, s, r_objs, s_objs = box_sets
        truth = brute_distance(r_objs, s_objs, EPS)
        res = object_distance_join(s, r, EPS, method="diff")
        assert {(b, a) for a, b in res.pairs_set()} == truth

    def test_adaptive_replicates_less(self, box_sets):
        r, s, _r_objs, _s_objs = box_sets
        adaptive = object_distance_join(r, s, EPS, method="lpib").metrics
        uni_r = object_distance_join(r, s, EPS, method="uni_r").metrics
        uni_s = object_distance_join(r, s, EPS, method="uni_s").metrics
        assert adaptive.replicated_total < min(
            uni_r.replicated_total, uni_s.replicated_total
        )

    def test_negative_eps_rejected(self, box_sets):
        r, s, _r, _s = box_sets
        with pytest.raises(ValueError):
            object_distance_join(r, s, -1.0)

    def test_zero_eps_is_touch_join(self, box_sets):
        r, s, r_objs, s_objs = box_sets
        res = object_distance_join(r, s, 0.0, method="lpib")
        assert res.pairs_set() == brute_distance(r_objs, s_objs, 0.0)


class TestIntersectionJoin:
    @pytest.mark.parametrize("method", ["lpib", "uni_r"])
    def test_boxes(self, box_sets, method):
        r, s, r_objs, s_objs = box_sets
        truth = brute_intersection(r_objs, s_objs)
        res = object_intersection_join(r, s, method=method)
        assert res.pairs_set() == truth

    def test_polygons_vs_polylines(self, mixed_sets):
        r, s, r_objs, s_objs = mixed_sets
        truth = brute_intersection(r_objs, s_objs)
        res = object_intersection_join(r, s, method="diff")
        assert res.pairs_set() == truth

    def test_intersection_subset_of_distance_join(self, box_sets):
        r, s, _r_objs, _s_objs = box_sets
        inter = object_intersection_join(r, s, method="lpib").pairs_set()
        dist = object_distance_join(r, s, EPS, method="lpib").pairs_set()
        assert inter <= dist


class TestDegenerateObjects:
    def test_one_giant_object_collapses_grid(self):
        """A single domain-spanning object forces eps_eff near the domain
        extent; the join must still be exact on the resulting tiny grid."""
        from repro.geometry.mbr import MBR
        from repro.geometry.objects import BoxObject

        giant = BoxObject(0, MBR(0.05, 0.05, 0.95, 0.95), Side.R)
        small = random_boxes(100, Side.S, mean_size=0.01, seed=9)
        r = ObjectSet([giant], "giant")
        s = ObjectSet(small, "smalls")
        res = object_distance_join(r, s, 0.01, method="lpib")
        truth = brute_distance([giant], small, 0.01)
        assert res.pairs_set() == truth
        assert len(truth) > 0  # the giant touches most of the space

    def test_single_object_each_side(self):
        from repro.geometry.mbr import MBR
        from repro.geometry.objects import BoxObject

        a = BoxObject(1, MBR(0.1, 0.1, 0.2, 0.2), Side.R)
        b = BoxObject(2, MBR(0.25, 0.1, 0.3, 0.2), Side.S)
        res = object_distance_join(ObjectSet([a]), ObjectSet([b]), 0.06)
        assert res.pairs_set() == {(1, 2)}
        res = object_distance_join(ObjectSet([a]), ObjectSet([b]), 0.04)
        assert len(res) == 0

    def test_degenerate_all_point_objects_zero_eps(self):
        from repro.geometry.mbr import MBR
        from repro.geometry.objects import BoxObject

        a = BoxObject(1, MBR(0.5, 0.5, 0.5, 0.5), Side.R)  # zero-extent
        b = BoxObject(2, MBR(0.5, 0.5, 0.5, 0.5), Side.S)
        with pytest.raises(ValueError):
            # eps 0 and zero radii: nothing to build a grid from
            from repro.joins.object_join import object_join

            object_join(ObjectSet([a]), ObjectSet([b]), 0.0, lambda x, y: True)


class TestObjectSet:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ObjectSet([])

    def test_mixed_sides_rejected(self):
        objs = random_boxes(2, Side.R, seed=1) + random_boxes(2, Side.S, seed=2)
        with pytest.raises(ValueError):
            ObjectSet(objs)

    def test_same_side_join_rejected(self, box_sets):
        r, _s, _r_objs, _s_objs = box_sets
        with pytest.raises(ValueError):
            object_distance_join(r, r, EPS)

    def test_max_radius(self, box_sets):
        r, _s, r_objs, _s_objs = box_sets
        assert r.max_radius == pytest.approx(max(o.radius() for o in r_objs))

    def test_mbr_covers_objects(self, box_sets):
        r, _s, r_objs, _s_objs = box_sets
        m = r.mbr()
        for obj in r_objs:
            assert m.intersects(obj.mbr())


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(30, 200),
    eps=st.floats(0.003, 0.03),
    method=st.sampled_from(["lpib", "diff", "uni_r", "uni_s"]),
    mean_size=st.floats(0.002, 0.02),
)
def test_property_box_join_matches_brute_force(seed, n, eps, method, mean_size):
    r_objs = random_boxes(n, Side.R, mean_size=mean_size, seed=seed)
    s_objs = random_boxes(n, Side.S, mean_size=mean_size, seed=seed + 1)
    truth = brute_distance(r_objs, s_objs, eps)
    res = object_distance_join(
        ObjectSet(r_objs), ObjectSet(s_objs), eps, method=method,
        sample_rate=0.5,
    )
    assert res.pairs_set() == truth
    assert len(res) == len(truth)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 5000),
    n=st.integers(30, 150),
)
def test_property_intersection_join_matches_brute_force(seed, n):
    r_objs = random_polygons(n, Side.R, mean_size=0.02, seed=seed)
    s_objs = random_polylines(n, Side.S, mean_size=0.02, seed=seed + 1)
    truth = brute_intersection(r_objs, s_objs)
    res = object_intersection_join(ObjectSet(r_objs), ObjectSet(s_objs))
    assert res.pairs_set() == truth


class TestMetrics:
    def test_metrics_populated(self, box_sets):
        r, s, _r_objs, _s_objs = box_sets
        m = object_distance_join(r, s, EPS, method="lpib").metrics
        assert m.method == "object-lpib"
        assert m.input_r == len(r) and m.input_s == len(s)
        assert m.shuffle_records == len(r) + len(s) + m.replicated_total
        assert m.candidate_pairs >= m.results
        assert m.exec_time_model > 0

    def test_payload_inflates_shuffle(self):
        lean = ObjectSet(random_boxes(300, Side.R, seed=5), "lean")
        fat = ObjectSet(random_boxes(300, Side.R, seed=5, payload_bytes=200), "fat")
        s = ObjectSet(random_boxes(300, Side.S, seed=6), "s")
        lean_m = object_distance_join(lean, s, EPS).metrics
        fat_m = object_distance_join(fat, s, EPS).metrics
        assert fat_m.shuffle_bytes > lean_m.shuffle_bytes
        assert fat_m.results == lean_m.results
