"""Shared fixtures and the per-test alarm for the test suite."""

from __future__ import annotations

import itertools
import signal

import pytest

from repro.agreements.graph import AgreementGraph
from repro.data.generators import gaussian_clusters
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid


# ----------------------------------------------------------------------
# per-test alarm (pytest-timeout equivalent, stdlib-only)
# ----------------------------------------------------------------------
#: Default deadline for tests marked ``cluster``: a hung daemon or a
#: deadlocked socket must fail the chaos suite in seconds, not wedge CI.
CLUSTER_TEST_TIMEOUT = 120.0

#: Default deadline for tests marked ``serving``: a wedged event loop or
#: a client blocked on a dead socket must fail fast, like the cluster
#: suite's chaos tests.
SERVING_TEST_TIMEOUT = 60.0


class DeadlineExceeded(Exception):
    """A test ran past its ``timeout`` marker (or the cluster default)."""


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """Arm a SIGALRM deadline around each test that declares one.

    ``@pytest.mark.timeout(seconds)`` sets an explicit deadline; tests
    marked ``cluster`` get :data:`CLUSTER_TEST_TIMEOUT` and tests marked
    ``serving`` get :data:`SERVING_TEST_TIMEOUT` by default.
    SIGALRM interval timers are *not* inherited across ``fork``, so
    daemon processes spawned inside a test are unaffected.  Main-thread
    only (pytest runs tests on the main thread).
    """
    marker = item.get_closest_marker("timeout")
    seconds = None
    if marker is not None and marker.args:
        seconds = float(marker.args[0])
    elif item.get_closest_marker("cluster") is not None:
        seconds = CLUSTER_TEST_TIMEOUT
    elif item.get_closest_marker("serving") is not None:
        seconds = SERVING_TEST_TIMEOUT
    if not seconds or not hasattr(signal, "SIGALRM"):
        yield
        return

    def on_alarm(signum, frame):
        raise DeadlineExceeded(
            f"{item.nodeid} exceeded its {seconds:g}s deadline"
        )

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def grid2x2() -> Grid:
    """A 2x2 grid with eps=1 and cell side 2.5 (one quartet)."""
    return Grid(MBR(0, 0, 5, 5), eps=1.0)


@pytest.fixture
def grid3x2() -> Grid:
    """A 3x2 grid with eps=1 (two quartets sharing a side pair)."""
    return Grid(MBR(0, 0, 7.5, 5), eps=1.0)


@pytest.fixture
def grid4x4() -> Grid:
    """A 4x4 grid with eps=1 (nine quartets)."""
    return Grid(MBR(0, 0, 10, 10), eps=1.0)


def make_graph(grid: Grid, types) -> AgreementGraph:
    """An agreement graph from a type assignment.

    ``types`` is either a single :class:`Side` (uniform) or a sequence of
    sides matching ``grid.adjacent_pairs()`` order.
    """
    pairs = [frozenset(p[:2]) for p in grid.adjacent_pairs()]
    if isinstance(types, Side):
        types = [types] * len(pairs)
    return AgreementGraph(grid, dict(zip(pairs, types)))


def all_type_combos(grid: Grid):
    """Every agreement-type assignment for a (small) grid."""
    n = sum(1 for _ in grid.adjacent_pairs())
    return itertools.product([Side.R, Side.S], repeat=n)


@pytest.fixture
def small_clusters():
    """A pair of small clustered point sets for end-to-end tests."""
    r = gaussian_clusters(1500, seed=11, name="R")
    s = gaussian_clusters(1500, seed=22, name="S")
    return r, s
