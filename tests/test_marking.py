"""Unit tests for Algorithm 1: edge marking and locking."""

import pytest

from repro.agreements.marking import (
    generate_duplicate_free_graph,
    mark_quartet,
    mixed_triangles,
    triangle_apex,
    unresolved_mixed_triangles,
)
from repro.geometry.point import Side
from tests.conftest import all_type_combos, make_graph


def graph_with(grid, types):
    return make_graph(grid, list(types))


def pairs_in_order(grid):
    return [frozenset(p[:2]) for p in grid.adjacent_pairs()]


def set_types(grid2x2, mapping):
    """Build a 2x2 graph with explicit per-pair types.

    ``mapping`` maps (cx_a, cy_a, cx_b, cy_b) -> Side.
    """
    types = {}
    for (ax, ay, bx, by), side in mapping.items():
        types[frozenset((grid2x2.cell_id(ax, ay), grid2x2.cell_id(bx, by)))] = side
    from repro.agreements.graph import AgreementGraph

    return AgreementGraph(grid2x2, types)


class TestApexDetection:
    def test_pure_triangle_has_no_apex(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        for tri in sub.triangles():
            assert triangle_apex(sub, tri) is None

    def test_mixed_triangle_apex(self, grid2x2):
        # bl-br: S, all others R -> in triangle (bl, br, tl) the apex is tl
        graph = set_types(
            grid2x2,
            {
                (0, 0, 1, 0): Side.S,
                (0, 0, 0, 1): Side.R,
                (0, 0, 1, 1): Side.R,
                (1, 0, 0, 1): Side.R,
                (1, 0, 1, 1): Side.R,
                (0, 1, 1, 1): Side.R,
            },
        )
        sub = graph.quartet((1, 1))
        bl, br, tl = (
            grid2x2.cell_id(0, 0),
            grid2x2.cell_id(1, 0),
            grid2x2.cell_id(0, 1),
        )
        assert triangle_apex(sub, (bl, br, tl)) == tl

    def test_mixed_triangle_count(self, grid2x2):
        graph = set_types(
            grid2x2,
            {
                (0, 0, 1, 0): Side.S,
                (0, 0, 0, 1): Side.R,
                (0, 0, 1, 1): Side.R,
                (1, 0, 0, 1): Side.R,
                (1, 0, 1, 1): Side.R,
                (0, 1, 1, 1): Side.R,
            },
        )
        sub = graph.quartet((1, 1))
        # bl-br is the only S pair; it appears in two triangles
        assert len(list(mixed_triangles(sub))) == 2


class TestMarkQuartet:
    def test_pure_graph_marks_nothing(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        report = mark_quartet(sub)
        assert report.marked_edges == 0
        assert report.mixed_triangles == 0
        assert not any(e.marked or e.locked for e in sub.edges())

    def test_every_mixed_triangle_resolved(self, grid2x2):
        for combo in all_type_combos(grid2x2):
            graph = graph_with(grid2x2, combo)
            sub = graph.quartet((1, 1))
            mark_quartet(sub)
            assert unresolved_mixed_triangles(sub) == []

    def test_marked_edge_is_apex_edge(self, grid2x2):
        for combo in all_type_combos(grid2x2):
            graph = graph_with(grid2x2, combo)
            sub = graph.quartet((1, 1))
            mark_quartet(sub)
            for e in sub.edges():
                if not e.marked:
                    continue
                # the marked edge must be an apex edge of a mixed triangle
                ok = False
                for tri in sub.triangles_of_pair(e.tail, e.head):
                    if triangle_apex(sub, tri) == e.tail:
                        ok = True
                assert ok, (combo, e)

    def test_every_marked_edge_keeps_a_valid_support_triangle(self, grid2x2):
        """For a marked e_ij there must remain a third vertex k with
        e_ik of the same type, e_jk of the other type, and both unmarked --
        the triangle whose locked edges carry the excluded pairs."""
        for combo in all_type_combos(grid2x2):
            graph = graph_with(grid2x2, combo)
            sub = graph.quartet((1, 1))
            mark_quartet(sub)
            for e in sub.edges():
                if not e.marked:
                    continue
                supports = [
                    k
                    for k in sub.third_vertices(e.tail, e.head)
                    if sub.edge(e.tail, k).side == e.side
                    and sub.edge(e.head, k).side != e.side
                    and not sub.edge(e.tail, k).marked
                    and not sub.edge(e.head, k).marked
                ]
                assert supports, (combo, e)

    def test_report_counts(self, grid2x2):
        graph = set_types(
            grid2x2,
            {
                (0, 0, 1, 0): Side.S,
                (0, 0, 0, 1): Side.R,
                (0, 0, 1, 1): Side.R,
                (1, 0, 0, 1): Side.R,
                (1, 0, 1, 1): Side.R,
                (0, 1, 1, 1): Side.R,
            },
        )
        report = mark_quartet(graph.quartet((1, 1)))
        assert report.quartets == 1
        assert report.mixed_triangles == 2
        assert report.marked_edges >= 1

    def test_weight_ordering_marks_diagonals_first(self, grid2x2):
        """Diagonal edges are examined before side edges regardless of
        weight, per the paper's ordering (Sect. 5.2)."""
        graph = set_types(
            grid2x2,
            {
                (0, 0, 1, 0): Side.R,
                (0, 0, 0, 1): Side.S,
                (0, 0, 1, 1): Side.S,  # diagonal bl-tr
                (1, 0, 0, 1): Side.R,  # diagonal br-tl
                (1, 0, 1, 1): Side.R,
                (0, 1, 1, 1): Side.S,
            },
        )
        sub = graph.quartet((1, 1))
        # give side edges huge weights; diagonals stay at zero
        for e in sub.edges():
            if not sub.pair_is_diagonal(e.tail, e.head):
                e.weight = 1000.0
        mark_quartet(sub)
        diagonal_marks = [
            e for e in sub.edges() if e.marked and sub.pair_is_diagonal(e.tail, e.head)
        ]
        assert diagonal_marks, "expected at least one diagonal edge marked first"


class TestTriangleTieBreak:
    def test_larger_locked_weight_sum_wins(self, grid2x2):
        """When an edge can be marked via two triangles, the one whose
        locked edges carry the larger weight sum is chosen (Sect. 5.2)."""
        bl, br = grid2x2.cell_id(0, 0), grid2x2.cell_id(1, 0)
        tl, tr = grid2x2.cell_id(0, 1), grid2x2.cell_id(1, 1)
        graph = set_types(
            grid2x2,
            {
                (0, 0, 1, 1): Side.R,  # bl-tr diagonal: the marked edge
                (0, 0, 1, 0): Side.R,  # bl-br
                (0, 0, 0, 1): Side.R,  # bl-tl
                (1, 0, 1, 1): Side.S,  # br-tr
                (0, 1, 1, 1): Side.S,  # tl-tr
                (1, 0, 0, 1): Side.S,  # br-tl diagonal
            },
        )
        sub = graph.quartet((1, 1))
        # make e(bl->tr) the first edge examined (heaviest diagonal) and
        # give the tl-triangle supports the larger weight sum
        sub.edge(bl, tr).weight = 100.0
        sub.edge(bl, br).weight = 1.0   # support via k=br
        sub.edge(tr, br).weight = 1.0
        sub.edge(bl, tl).weight = 10.0  # support via k=tl
        sub.edge(tr, tl).weight = 10.0
        mark_quartet(sub)
        assert sub.edge(bl, tr).marked
        assert sub.edge(bl, tl).locked
        assert sub.edge(tr, tl).locked


class TestGraphLevel:
    def test_generate_covers_all_quartets(self, grid4x4):
        import itertools
        import random

        rng = random.Random(3)
        pairs = pairs_in_order(grid4x4)
        types = {p: rng.choice([Side.R, Side.S]) for p in pairs}
        from repro.agreements.graph import AgreementGraph

        graph = AgreementGraph(grid4x4, types)
        report = generate_duplicate_free_graph(graph)
        assert report.quartets == 9
        for sub in graph.quartets.values():
            assert unresolved_mixed_triangles(sub) == []
        assert graph.num_marked_edges() == sum(
            len(s.marked_edges()) for s in graph.quartets.values()
        )
        del itertools

    def test_uniform_graph_needs_no_marks(self, grid4x4):
        graph = make_graph(grid4x4, Side.S)
        report = generate_duplicate_free_graph(graph)
        assert report.marked_edges == 0
        assert report.mixed_triangles == 0
