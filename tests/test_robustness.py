"""Robustness and failure-injection tests: degenerate inputs, forced
algorithm failures, and fallback paths."""

import numpy as np
import pytest

from repro.agreements.marking import MarkingError, mark_quartet
from repro.data.pointset import PointSet
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.joins.distance_join import JoinConfig, distance_join
from repro.verify.oracle import kdtree_pairs
from tests.conftest import make_graph


def points(coords, name="p"):
    xs = np.array([c[0] for c in coords], dtype=float)
    ys = np.array([c[1] for c in coords], dtype=float)
    return PointSet(xs, ys, name=name)


class TestDegenerateInputs:
    def test_all_points_identical(self):
        r = points([(0.5, 0.5)] * 50, "r")
        s = points([(0.5, 0.5)] * 50, "s")
        res = distance_join(r, s, JoinConfig(eps=0.01, method="lpib"))
        assert len(res) == 2500

    def test_eps_larger_than_domain(self):
        r = points([(0.1, 0.1), (0.9, 0.9)], "r")
        s = points([(0.5, 0.5)], "s")
        res = distance_join(r, s, JoinConfig(eps=5.0, method="lpib"))
        assert res.pairs_set() == {(0, 0), (1, 0)}

    def test_collinear_points(self):
        r = points([(x / 50, 0.5) for x in range(50)], "r")
        s = points([(x / 50 + 0.001, 0.5) for x in range(50)], "s")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.03)
        for method in ("lpib", "uni_r", "eps_grid"):
            res = distance_join(r, s, JoinConfig(eps=0.03, method=method))
            assert res.pairs_set() == truth, method

    def test_lattice_points_on_cell_borders(self):
        """Points exactly on every grid line: boundary assignment must stay
        consistent between replication and native assignment."""
        grid = Grid(MBR(0, 0, 1, 1), 0.05)
        xs = [grid.mbr.xmin + i * grid.cell_w for i in range(grid.nx + 1)]
        ys = [grid.mbr.ymin + j * grid.cell_h for j in range(grid.ny + 1)]
        coords = [(min(x, 1.0), min(y, 1.0)) for x in xs[:8] for y in ys[:8]]
        r = points(coords, "r")
        s = points([(x + 1e-4, y) for x, y in coords], "s")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.05)
        cfg = JoinConfig(eps=0.05, method="diff", mbr=MBR(0, 0, 1, 1))
        res = distance_join(r, s, cfg)
        assert res.pairs_set() == truth
        assert len(res) == len(truth)

    def test_single_point_each(self):
        r = points([(0.2, 0.2)], "r")
        s = points([(0.201, 0.2)], "s")
        res = distance_join(r, s, JoinConfig(eps=0.01))
        assert res.pairs_set() == {(0, 0)}

    def test_extreme_aspect_ratio_domain(self):
        rng = np.random.default_rng(5)
        r = PointSet(rng.uniform(0, 100, 300), rng.uniform(0, 0.3, 300), name="r")
        s = PointSet(rng.uniform(0, 100, 300), rng.uniform(0, 0.3, 300), name="s")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.5)
        res = distance_join(r, s, JoinConfig(eps=0.5, method="lpib"))
        assert res.pairs_set() == truth


class TestValidation:
    def test_nan_coordinates_rejected(self):
        with pytest.raises(ValueError):
            PointSet([0.0, float("nan")], [0.0, 0.0])

    def test_inf_coordinates_rejected(self):
        with pytest.raises(ValueError):
            PointSet([0.0, float("inf")], [0.0, 0.0])

    def test_empty_point_set_allowed(self):
        assert len(PointSet(np.empty(0), np.empty(0))) == 0


class TestFailureInjection:
    def test_marking_error_when_triangle_unresolvable(self, grid2x2):
        """Force both base directed edges of a mixed triangle to be marked:
        neither apex edge can then be marked and the repair must raise."""
        graph = make_graph(
            grid2x2,
            [  # pair order: (0,1) (0,2) (0,3) (1,3) (1,2) (2,3)
                Side.S,  # 0-1 base pair of the mixed triangle (0, 1, 2)
                Side.R,  # 0-2
                Side.R,  # 0-3
                Side.R,  # 1-3
                Side.R,  # 1-2
                Side.R,  # 2-3
            ],
        )
        sub = graph.quartet((1, 1))
        # triangle (0, 1, 2): apex 2 (edges 2->0 and 2->1 of type R, base
        # 0-1 of type S).  Sabotage: pre-mark both base directions.
        sub.edge(0, 1).marked = True
        sub.edge(1, 0).marked = True
        with pytest.raises(MarkingError):
            mark_quartet(sub)

    def test_repair_pass_resolves_when_locked_but_unmarked(self, grid2x2):
        """Locks alone must never make a triangle unresolvable: the repair
        pass ignores locks (but never marks over marked supports)."""
        graph = make_graph(
            grid2x2,
            [Side.S, Side.R, Side.R, Side.R, Side.R, Side.R],
        )
        sub = graph.quartet((1, 1))
        for e in sub.edges():
            e.locked = True  # sabotage: everything locked, nothing marked
        report = mark_quartet(sub)
        assert report.repaired_triangles >= 1
        from repro.agreements.marking import unresolved_mixed_triangles

        assert unresolved_mixed_triangles(sub) == []


class TestMemoryModel:
    def test_peak_heap_reported(self, small_clusters):
        r, s = small_clusters
        m = distance_join(r, s, JoinConfig(eps=0.02, method="lpib")).metrics
        assert m.extra["peak_worker_heap_bytes"] > 0

    def test_generous_limit_passes(self, small_clusters):
        r, s = small_clusters
        cfg = JoinConfig(eps=0.02, method="lpib", memory_limit_bytes=10**9)
        assert distance_join(r, s, cfg).metrics.results > 0

    def test_tight_limit_raises_oom(self, small_clusters):
        from repro.joins.distance_join import SimulatedOOMError

        r, s = small_clusters
        cfg = JoinConfig(eps=0.02, method="uni_r", memory_limit_bytes=1024)
        with pytest.raises(SimulatedOOMError) as exc:
            distance_join(r, s, cfg)
        assert exc.value.demand_bytes > exc.value.limit_bytes

    def test_eps_grid_needs_more_heap_than_adaptive(self, small_clusters):
        r, s = small_clusters
        adaptive = distance_join(r, s, JoinConfig(eps=0.02, method="lpib")).metrics
        eps_grid = distance_join(r, s, JoinConfig(eps=0.02, method="eps_grid")).metrics
        assert (
            eps_grid.extra["peak_worker_heap_bytes"]
            > adaptive.extra["peak_worker_heap_bytes"]
        )


class TestFaultRecovery:
    def test_zero_retry_budget_degrades_to_serial(self, small_clusters):
        """With no retries the fault plan kills the processes and threads
        attempts; the driver must walk the fallback chain down to serial
        and still produce the oracle answer."""
        r, s = small_clusters
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.02)
        cfg = JoinConfig(
            eps=0.02, method="lpib", num_workers=3, executor_workers=2,
            execution_backend="processes", faults="kill:p=1:times=2",
            max_retries=0,
        )
        res = distance_join(r, s, cfg)
        assert res.pairs_set() == truth
        assert len(res) == len(truth)
        assert res.metrics.fallback_backend == "serial"
        assert res.metrics.extra["degraded_steps"] == 2  # threads, then serial

    def test_degradation_disabled_raises(self, small_clusters):
        from repro.engine.faults import RetryBudgetExhausted

        r, s = small_clusters
        cfg = JoinConfig(
            eps=0.02, method="lpib", num_workers=3, executor_workers=2,
            execution_backend="threads", faults="kernel:p=1:times=0",
            max_retries=1, degrade=False,
        )
        with pytest.raises(RetryBudgetExhausted):
            distance_join(r, s, cfg)

    def test_faulted_metrics_stay_consistent(self, small_clusters):
        """Recovery must not corrupt the accounting the validator checks
        (shuffle totals, result counts, remote-byte bounds)."""
        from repro.verify.invariants import validate_join_result

        r, s = small_clusters
        cfg = JoinConfig(
            eps=0.02, method="uni_r", num_workers=3, executor_workers=2,
            execution_backend="threads",
            faults="kill:p=1:times=1,fetch:p=0.5", max_retries=3,
        )
        res = distance_join(r, s, cfg)
        check = validate_join_result(res, r, s, 0.02)
        assert check.ok, check.issues


class TestFallbacks:
    def test_lpt_with_unsampled_cells_still_correct(self, small_clusters):
        """A 0.1% sample leaves most cells unseen; the partitioner must
        fall back to hashing for them without losing results."""
        r, s = small_clusters
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.02)
        cfg = JoinConfig(eps=0.02, method="uni_r", sample_rate=0.001,
                         cell_assignment="lpt")
        res = distance_join(r, s, cfg)
        assert res.pairs_set() == truth

    def test_adaptive_with_tiny_sample_still_correct(self, small_clusters):
        """Agreements chosen from almost no data are arbitrary but must
        never break correctness or duplicate-freeness."""
        r, s = small_clusters
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.02)
        for seed in (0, 1, 2):
            cfg = JoinConfig(eps=0.02, method="lpib", sample_rate=0.001, seed=seed)
            res = distance_join(r, s, cfg)
            assert res.pairs_set() == truth
            assert len(res) == len(truth)

    def test_single_worker(self, small_clusters):
        r, s = small_clusters
        cfg = JoinConfig(eps=0.02, method="diff", num_workers=1, num_partitions=1)
        res = distance_join(r, s, cfg)
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.02)
        assert res.pairs_set() == truth
        assert res.metrics.remote_bytes == 0  # nothing leaves the one worker
