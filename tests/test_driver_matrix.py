"""Cross-driver consistency matrix.

Every join driver in the library -- the grid methods, the Sedona-like
engine, the generalized partition joins -- must satisfy the same metric
invariants and return the identical result set on one shared workload.
"""

import numpy as np
import pytest

from repro.baselines.sedona_like import SedonaConfig, sedona_join
from repro.data.generators import gaussian_clusters
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)
from repro.verify.oracle import kdtree_pairs

EPS = 0.018


@pytest.fixture(scope="module")
def workload():
    r = gaussian_clusters(1800, seed=61, name="R")
    s = gaussian_clusters(1500, seed=62, name="S")
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), EPS)
    return r, s, truth


def _drivers():
    def grid(method):
        def run(r, s):
            return distance_join(r, s, JoinConfig(eps=EPS, method=method))

        return run

    def generalized(partition):
        def run(r, s):
            return generalized_distance_join(
                r, s, GeneralizedJoinConfig(eps=EPS, partition=partition)
            )

        return run

    return {
        "lpib": grid("lpib"),
        "diff": grid("diff"),
        "uni_r": grid("uni_r"),
        "uni_s": grid("uni_s"),
        "eps_grid": grid("eps_grid"),
        "sedona": lambda r, s: sedona_join(r, s, SedonaConfig(eps=EPS)),
        "gen-grid": generalized("grid"),
        "gen-quadtree": generalized("quadtree"),
    }


@pytest.mark.parametrize("name", sorted(_drivers()))
def test_driver_invariants(workload, name):
    r, s, truth = workload
    res = _drivers()[name](r, s)
    m = res.metrics

    # identical, duplicate-free results
    assert res.pairs_set() == truth, name
    assert len(res) == len(truth), name
    assert m.results == len(truth), name

    # accounting invariants
    assert m.input_r == len(r) and m.input_s == len(s)
    assert m.shuffle_records == len(r) + len(s) + m.replicated_total
    assert 0 <= m.remote_records <= m.shuffle_records
    assert 0 <= m.remote_bytes <= m.shuffle_bytes
    assert m.candidate_pairs >= m.results or name == "sedona"
    # (sedona counts R-tree leaf entries inspected, which can undercut the
    # result count only if eps-discs are found via containment -- never
    # here, but keep the weaker bound uniform)
    assert m.construction_time_model > 0
    assert m.join_time_model >= 0
    assert m.exec_time_model == pytest.approx(
        m.construction_time_model + m.join_time_model
    )
    assert len(m.worker_join_costs) == m.num_workers or not m.worker_join_costs


@pytest.mark.parametrize("name", ["lpib", "sedona", "gen-quadtree"])
def test_drivers_deterministic(workload, name):
    """Same inputs, same config, same seed: identical metrics and pairs."""
    r, s, _ = workload
    run = _drivers()[name]
    a = run(r, s)
    b = run(r, s)
    assert a.pairs_set() == b.pairs_set()
    assert a.metrics.replicated_total == b.metrics.replicated_total
    assert a.metrics.shuffle_bytes == b.metrics.shuffle_bytes
    assert a.metrics.exec_time_model == pytest.approx(b.metrics.exec_time_model)


def test_pair_arrays_well_formed(workload):
    r, s, truth = workload
    res = distance_join(r, s, JoinConfig(eps=EPS, method="lpib"))
    assert res.r_ids.dtype == np.int64
    assert res.s_ids.dtype == np.int64
    assert len(res.r_ids) == len(res.s_ids)
    assert set(res.r_ids.tolist()) <= set(r.ids.tolist())
    assert set(res.s_ids.tolist()) <= set(s.ids.tolist())
