"""Tests for WKT parsing and serialization."""

import numpy as np
import pytest

from repro.data.generators import uniform
from repro.data.object_generators import random_polygons, random_polylines
from repro.data.wkt import (
    WKTError,
    parse_wkt,
    read_objects_wkt,
    read_points_wkt,
    to_wkt,
    write_objects_wkt,
    write_points_wkt,
)
from repro.geometry.objects import PolygonObject, PolylineObject
from repro.geometry.point import Side


class TestParse:
    def test_point(self):
        assert parse_wkt("POINT (1.5 -2.25)") == (1.5, -2.25)

    def test_point_scientific_notation(self):
        assert parse_wkt("POINT (1e-3 2E+2)") == (0.001, 200.0)

    def test_linestring(self):
        geom = parse_wkt("LINESTRING (0 0, 1 1, 2 0)", pid=7, side=Side.S)
        assert isinstance(geom, PolylineObject)
        assert geom.pid == 7
        assert geom.points == [(0, 0), (1, 1), (2, 0)]

    def test_polygon_closing_vertex_dropped(self):
        geom = parse_wkt("POLYGON ((0 0, 2 0, 1 2, 0 0))")
        assert isinstance(geom, PolygonObject)
        assert geom.ring == [(0, 0), (2, 0), (1, 2)]
        assert geom.area() == pytest.approx(2.0)

    def test_polygon_unclosed_accepted(self):
        geom = parse_wkt("POLYGON ((0 0, 2 0, 1 2))")
        assert len(geom.ring) == 3

    def test_malformed_rejected(self):
        for bad in (
            "POINT (1)",
            "POINT (a b)",
            "CIRCLE (0 0, 1)",
            "POLYGON ((0 0, 1 1, 0 0))",  # two distinct vertices only
            "LINESTRING (0 0, 1)",
            "",
        ):
            with pytest.raises(WKTError):
                parse_wkt(bad)


class TestSerialize:
    def test_round_trip_point(self):
        assert parse_wkt(to_wkt((0.125, -3.5))) == (0.125, -3.5)

    def test_round_trip_polyline(self):
        line = PolylineObject(1, [(0, 0), (0.5, 0.25)], Side.R)
        back = parse_wkt(to_wkt(line))
        assert back.points == line.points

    def test_round_trip_polygon(self):
        poly = PolygonObject(1, [(0, 0), (1, 0), (0.5, 1)], Side.R)
        back = parse_wkt(to_wkt(poly))
        assert back.ring == poly.ring

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            to_wkt(42)


class TestFiles:
    def test_points_round_trip(self, tmp_path):
        ps = uniform(80, seed=1, name="w")
        path = tmp_path / "pts.wkt"
        write_points_wkt(ps, str(path))
        back = read_points_wkt(str(path), name="w")
        assert np.allclose(back.xs, ps.xs)
        assert np.allclose(back.ys, ps.ys)

    def test_objects_round_trip(self, tmp_path):
        objs = random_polygons(20, Side.R, seed=2) + []
        path = tmp_path / "objs.wkt"
        write_objects_wkt(objs, str(path))
        back = read_objects_wkt(str(path), Side.R)
        assert len(back) == 20
        for a, b in zip(objs, back):
            assert a.ring == pytest.approx(b.ring)

    def test_mixed_lines_round_trip(self, tmp_path):
        objs = random_polylines(10, Side.S, seed=3)
        path = tmp_path / "lines.wkt"
        write_objects_wkt(objs, str(path))
        back = read_objects_wkt(str(path), Side.S, payload_bytes=16)
        assert all(o.payload_bytes == 16 for o in back)
        assert back[0].points == pytest.approx(objs[0].points)

    def test_point_file_via_object_reader_rejected(self, tmp_path):
        path = tmp_path / "pts.wkt"
        path.write_text("POINT (0 0)\n")
        with pytest.raises(WKTError):
            read_objects_wkt(str(path), Side.R)

    def test_object_file_via_point_reader_rejected(self, tmp_path):
        path = tmp_path / "objs.wkt"
        path.write_text("LINESTRING (0 0, 1 1)\n")
        with pytest.raises(WKTError):
            read_points_wkt(str(path))

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "pts.wkt"
        path.write_text("POINT (0 0)\n\nPOINT (1 1)\n")
        assert len(read_points_wkt(str(path))) == 2


def test_wkt_objects_join_end_to_end(tmp_path):
    """WKT-loaded objects flow straight into the object join."""
    from repro.joins.object_join import ObjectSet, object_intersection_join

    r_objs = random_polygons(60, Side.R, mean_size=0.03, seed=4)
    s_objs = random_polylines(60, Side.S, mean_size=0.03, seed=5)
    pr, ps_ = tmp_path / "r.wkt", tmp_path / "s.wkt"
    write_objects_wkt(r_objs, str(pr))
    write_objects_wkt(s_objs, str(ps_))
    r = ObjectSet(read_objects_wkt(str(pr), Side.R), "r")
    s = ObjectSet(read_objects_wkt(str(ps_), Side.S), "s")
    res = object_intersection_join(r, s)
    from repro.geometry.objects import objects_intersect

    truth = {
        (a.pid, b.pid) for a in r_objs for b in s_objs if objects_intersect(a, b)
    }
    assert res.pairs_set() == truth
