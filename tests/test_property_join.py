"""Property-based tests: the core invariants under random inputs.

Hypothesis drives random point clouds, epsilons, grid shapes and agreement
policies through the full assignment pipeline and checks the two paper
properties (correctness, duplicate-freeness) against the KD-tree oracle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agreements.graph import AgreementGraph
from repro.agreements.marking import generate_duplicate_free_graph
from repro.agreements.policies import (
    DiffPolicy,
    LPiBPolicy,
    UniformPolicy,
    instantiate_pair_types,
)
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.grid.statistics import GridStatistics
from repro.replication.assign import AdaptiveAssigner
from repro.replication.pbsm import UniversalAssigner
from repro.verify.oracle import verify_assignment


def _cloud(seed, n, extent):
    rng = np.random.default_rng(seed)
    # mix of clustered and uniform points to stress border regions
    n_uniform = n // 2
    xs = [rng.uniform(0, extent, n_uniform)]
    ys = [rng.uniform(0, extent, n_uniform)]
    remaining = n - n_uniform
    centers = rng.uniform(0, extent, (max(1, n // 40), 2))
    idx = rng.integers(0, len(centers), remaining)
    xs.append(np.clip(centers[idx, 0] + rng.normal(0, extent / 15, remaining), 0, extent))
    ys.append(np.clip(centers[idx, 1] + rng.normal(0, extent / 15, remaining), 0, extent))
    xs = np.concatenate(xs)
    ys = np.concatenate(ys)
    return [(i, float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))]


def _stats_from(grid, r_pts, s_pts):
    stats = GridStatistics(grid)
    stats.add_points(
        np.array([p[1] for p in r_pts]), np.array([p[2] for p in r_pts]), Side.R
    )
    stats.add_points(
        np.array([p[1] for p in s_pts]), np.array([p[2] for p in s_pts]), Side.S
    )
    return stats


policy_strategy = st.sampled_from(["lpib", "diff", "uni_r", "uni_s", "random"])


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(30, 250),
    eps=st.floats(0.4, 1.6),
    extent=st.floats(6.0, 16.0),
    policy_name=policy_strategy,
)
def test_adaptive_assignment_correct_and_duplicate_free(
    seed, n, eps, extent, policy_name
):
    grid = Grid(MBR(0, 0, extent, extent), eps)
    r_pts = _cloud(seed, n, extent)
    s_pts = _cloud(seed + 77, n, extent)
    stats = _stats_from(grid, r_pts, s_pts)

    if policy_name == "random":
        rng = np.random.default_rng(seed)
        pair_types = {
            frozenset(p[:2]): (Side.R if rng.random() < 0.5 else Side.S)
            for p in grid.adjacent_pairs()
        }
    else:
        policy = {
            "lpib": LPiBPolicy(),
            "diff": DiffPolicy(),
            "uni_r": UniformPolicy(Side.R),
            "uni_s": UniformPolicy(Side.S),
        }[policy_name]
        pair_types = instantiate_pair_types(grid, stats, policy)

    graph = AgreementGraph(grid, pair_types, stats)
    generate_duplicate_free_graph(graph)
    res = verify_assignment(AdaptiveAssigner(grid, graph), r_pts, s_pts, eps)
    assert res.ok, res.describe()


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(30, 200),
    eps=st.floats(0.4, 1.6),
    extent=st.floats(5.0, 14.0),
    side=st.sampled_from([Side.R, Side.S]),
)
def test_universal_assignment_correct_and_duplicate_free(seed, n, eps, extent, side):
    grid = Grid(MBR(0, 0, extent, extent), eps)
    r_pts = _cloud(seed, n, extent)
    s_pts = _cloud(seed + 31, n, extent)
    res = verify_assignment(UniversalAssigner(grid, side), r_pts, s_pts, eps)
    assert res.ok, res.describe()


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(30, 150),
    eps=st.floats(0.3, 1.2),
)
def test_eps_resolution_universal_grid(seed, n, eps):
    """The eps-grid baseline (resolution factor 1) keeps both properties."""
    extent = 8.0
    grid = Grid(MBR(0, 0, extent, extent), eps, resolution_factor=1.0)
    r_pts = _cloud(seed, n, extent)
    s_pts = _cloud(seed + 13, n, extent)
    res = verify_assignment(UniversalAssigner(grid, Side.R), r_pts, s_pts, eps)
    assert res.ok, res.describe()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(50, 300), eps=st.floats(0.3, 1.5))
def test_samj_rtree_join_matches_oracle(seed, n, eps):
    """The SAMJ baseline under random clouds, epsilons and tree shapes."""
    import numpy as np

    from repro.baselines.rtree_join import SamjConfig, rtree_samj_join
    from repro.data.pointset import PointSet
    from repro.verify.oracle import kdtree_pairs

    rng = np.random.default_rng(seed)
    r = PointSet(rng.uniform(0, 10, n), rng.uniform(0, 10, n), name="r")
    s = PointSet(rng.uniform(0, 10, n), rng.uniform(0, 10, n), name="s")
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), eps)
    cfg = SamjConfig(eps=eps, leaf_capacity=int(4 + seed % 30))
    res = rtree_samj_join(r, s, cfg)
    assert res.pairs_set() == truth
    assert len(res) == len(truth)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(50, 250), eps=st.floats(0.02, 0.06))
def test_clone_join_matches_oracle(seed, n, eps):
    """The clone join (both-side replication + midpoint ownership)."""
    import numpy as np

    from repro.data.pointset import PointSet
    from repro.joins.generalized_join import (
        GeneralizedJoinConfig,
        generalized_distance_join,
    )
    from repro.verify.oracle import kdtree_pairs

    rng = np.random.default_rng(seed)
    r = PointSet(rng.uniform(0, 1, n), rng.uniform(0, 1, n), name="r")
    s = PointSet(rng.uniform(0, 1, n), rng.uniform(0, 1, n), name="s")
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), eps)
    for partition in ("grid", "quadtree"):
        cfg = GeneralizedJoinConfig(
            eps=eps, partition=partition, method="clone", sample_rate=0.5, seed=seed
        )
        res = generalized_distance_join(r, s, cfg)
        assert res.pairs_set() == truth, partition
        assert len(res) == len(truth), partition


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), eps=st.floats(0.4, 1.4))
def test_replication_never_exceeds_three(seed, eps):
    """With cell sides > 2 eps a point is assigned to at most 4 cells
    (native + 3 replicas), per Sect. 4.1."""
    extent = 12.0
    grid = Grid(MBR(0, 0, extent, extent), eps)
    r_pts = _cloud(seed, 150, extent)
    s_pts = _cloud(seed + 5, 150, extent)
    stats = _stats_from(grid, r_pts, s_pts)
    graph = AgreementGraph(
        grid, instantiate_pair_types(grid, stats, LPiBPolicy()), stats
    )
    generate_duplicate_free_graph(graph)
    assigner = AdaptiveAssigner(grid, graph)
    for pid, x, y in r_pts + s_pts:
        for side in Side:
            assert len(assigner.assign(x, y, side)) <= 4


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), eps=st.floats(0.4, 1.4))
def test_adaptive_replicates_no_more_than_both_uniforms_combined(seed, eps):
    """Sanity bound: per boundary the adaptive choice replicates
    min(R, S) candidates, so its total replication cannot exceed the sum of
    what UNI(R) and UNI(S) replicate."""
    extent = 10.0
    grid = Grid(MBR(0, 0, extent, extent), eps)
    r_pts = _cloud(seed, 200, extent)
    s_pts = _cloud(seed + 3, 200, extent)
    stats = _stats_from(grid, r_pts, s_pts)
    graph = AgreementGraph(
        grid, instantiate_pair_types(grid, stats, LPiBPolicy()), stats
    )
    generate_duplicate_free_graph(graph)
    adaptive = AdaptiveAssigner(grid, graph)

    def total_replicas(assigner):
        total = 0
        for pid, x, y in r_pts:
            total += len(assigner.assign(x, y, Side.R)) - 1
        for pid, x, y in s_pts:
            total += len(assigner.assign(x, y, Side.S)) - 1
        return total

    uni = total_replicas(UniversalAssigner(grid, Side.R)) + total_replicas(
        UniversalAssigner(grid, Side.S)
    )
    assert total_replicas(adaptive) <= uni
