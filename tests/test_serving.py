"""Tests for the resident join server (``repro.serving``).

Covers the tentpole guarantees end to end:

* served results are **bit-identical** to the one-shot driver on every
  path -- cold build, warm artifact-cache build, result-cache hit;
* the artifact cache hits on the second identical query and evicts
  under its byte budget;
* admission control coalesces identical concurrent queries and rejects
  beyond the queue bound;
* concurrent clients interleave cache hits and misses safely;
* the hygiene sweep reclaims stale pid-stamped server state dirs and
  socket files, and never touches a live owner's;
* one-shot-only flags (fault injection, spill) are rejected with
  targeted errors at the protocol layer;
* perfsmoke: a warm query beats a cold one by a pinned factor.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.engine.hygiene import (
    SERVE_PREFIX,
    sweep_stale_resources,
    write_owner_marker,
)
from repro.joins.distance_join import JoinConfig, distance_join
from repro.serving import (
    AdmissionController,
    ArtifactCache,
    DatasetRegistry,
    ProtocolError,
    QueryRejected,
    ServerConfig,
    ServerError,
    connect,
    dataset_fingerprint,
    estimate_nbytes,
    grid_partition_key,
    query_key,
    start_in_thread,
)

BASE_N = 1200
EPS = 0.012


@pytest.fixture(scope="module")
def inputs():
    r = load_dataset("R1", base_n=BASE_N)
    s = load_dataset("S1", base_n=BASE_N)
    return r, s


@pytest.fixture(scope="module")
def oneshot(inputs):
    """The reference one-shot result for the server's default query."""
    r, s = inputs
    return distance_join(r, s, JoinConfig(eps=EPS))


@pytest.fixture()
def server():
    handle = start_in_thread(
        ServerConfig(backend="serial", max_inflight=2, max_queue=8)
    )
    try:
        yield handle
    finally:
        handle.stop()


def _register(client):
    client.register("R", "R1", base_n=BASE_N)
    client.register("S", "S1", base_n=BASE_N)


def _pairs(response):
    return [tuple(p) for p in response["pairs"]]


#: Measured wall clocks: legitimately different run to run.  Everything
#: else in the metrics payload is deterministic and must replay exactly.
_WALL_KEYS = ("stage_times", "join_wall_makespan")


def _deterministic(metrics: dict) -> dict:
    return {k: v for k, v in metrics.items() if k not in _WALL_KEYS}


# ----------------------------------------------------------------------
# artifact cache
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_hit_miss_counters(self):
        cache = ArtifactCache(1_000_000)
        assert cache.get(("k",)) is None
        cache.put(("k",), {"x": np.arange(10)})
        assert cache.get(("k",)) is not None
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1
        assert stats.entries == 1 and stats.bytes > 0

    def test_evicts_lru_under_budget(self):
        entry = np.zeros(128, dtype=np.uint8)  # 128 bytes each
        cache = ArtifactCache(300)
        cache.put(("a",), entry)
        cache.put(("b",), entry)
        cache.get(("a",))  # "a" becomes most-recent
        cache.put(("c",), entry)  # over budget: evict LRU = "b"
        assert cache.contains(("a",))
        assert not cache.contains(("b",))
        assert cache.contains(("c",))
        assert cache.stats().evictions == 1

    def test_never_evicts_the_just_inserted_entry(self):
        cache = ArtifactCache(10)  # smaller than any entry
        cache.put(("big",), np.zeros(1000, dtype=np.uint8))
        assert cache.contains(("big",))

    def test_estimate_nbytes_walks_containers(self):
        a = np.zeros(1000, dtype=np.uint8)
        b = np.zeros(1000, dtype=np.uint8)
        assert estimate_nbytes(a) >= 1000
        assert estimate_nbytes({"a": a, "b": [b]}) >= 2000
        # the same array referenced twice is counted once
        assert estimate_nbytes([a, a]) < 2000


# ----------------------------------------------------------------------
# fingerprints and cache keys
# ----------------------------------------------------------------------
class TestFingerprint:
    def test_same_content_same_fingerprint(self, inputs):
        r, _ = inputs
        again = load_dataset("R1", base_n=BASE_N)
        assert dataset_fingerprint(r) == dataset_fingerprint(again)

    def test_different_content_differs(self, inputs):
        r, s = inputs
        assert dataset_fingerprint(r) != dataset_fingerprint(s)

    def test_key_tracks_build_inputs(self, inputs):
        r, s = inputs
        fr, fs = dataset_fingerprint(r), dataset_fingerprint(s)
        base = grid_partition_key(JoinConfig(eps=EPS), fr, fs)
        assert grid_partition_key(JoinConfig(eps=EPS), fr, fs) == base
        assert grid_partition_key(JoinConfig(eps=0.02), fr, fs) != base
        assert (
            grid_partition_key(JoinConfig(eps=EPS, method="diff"), fr, fs)
            != base
        )
        # the kernel affects the query, not the build
        k1 = query_key(JoinConfig(eps=EPS), fr, fs)
        k2 = query_key(
            JoinConfig(eps=EPS, local_kernel="grid_hash"), fr, fs
        )
        assert k1 != k2
        assert (
            grid_partition_key(
                JoinConfig(eps=EPS, local_kernel="grid_hash"), fr, fs
            )
            == base
        )


# ----------------------------------------------------------------------
# dataset registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_idempotent_reregistration(self, inputs):
        r, _ = inputs
        reg = DatasetRegistry()
        first = reg.register("R", r)
        assert reg.register("R", r) is first

    def test_conflicting_content_requires_replace(self, inputs):
        r, s = inputs
        reg = DatasetRegistry()
        reg.register("D", r)
        with pytest.raises(ValueError, match="replace=True"):
            reg.register("D", s)
        entry = reg.register("D", s, replace=True)
        assert entry.fingerprint == dataset_fingerprint(s)

    def test_unknown_name_lists_registered(self, inputs):
        r, _ = inputs
        reg = DatasetRegistry()
        reg.register("R", r)
        with pytest.raises(KeyError, match="R"):
            reg.get("missing")


# ----------------------------------------------------------------------
# admission control (pure asyncio, no server)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_coalesces_identical_keys(self):
        async def scenario():
            ctrl = AdmissionController(max_inflight=1, max_queue=4)
            calls = 0

            async def slow():
                nonlocal calls
                calls += 1
                await asyncio.sleep(0.05)
                return "answer"

            results = await asyncio.gather(
                *(ctrl.run(("q",), slow) for _ in range(5))
            )
            return calls, results, ctrl.stats()

        calls, results, stats = asyncio.run(scenario())
        assert calls == 1
        assert results == ["answer"] * 5
        assert stats["coalesced"] == 4
        assert stats["admitted"] == 1

    def test_rejects_beyond_queue(self):
        async def scenario():
            ctrl = AdmissionController(max_inflight=1, max_queue=1)

            async def slow():
                await asyncio.sleep(0.2)
                return "x"

            tasks = [
                asyncio.ensure_future(ctrl.run((i,), slow)) for i in range(4)
            ]
            await asyncio.sleep(0.02)  # let them race for the slot
            done = await asyncio.gather(*tasks, return_exceptions=True)
            return done, ctrl.stats()

        done, stats = asyncio.run(scenario())
        rejected = [d for d in done if isinstance(d, QueryRejected)]
        assert stats["rejected"] == len(rejected) >= 1
        assert stats["completed"] >= 1

    def test_failure_propagates_to_coalesced_waiters(self):
        async def scenario():
            ctrl = AdmissionController(max_inflight=1)

            async def boom():
                await asyncio.sleep(0.02)
                raise RuntimeError("kernel exploded")

            tasks = [
                asyncio.ensure_future(ctrl.run(("q",), boom))
                for _ in range(3)
            ]
            return await asyncio.gather(*tasks, return_exceptions=True)

        results = asyncio.run(scenario())
        assert all(isinstance(r, RuntimeError) for r in results)


# ----------------------------------------------------------------------
# the server end to end
# ----------------------------------------------------------------------
@pytest.mark.serving
class TestServedResults:
    def test_cold_and_warm_bit_identical_to_oneshot(self, server, oneshot):
        expected = sorted(zip(oneshot.r_ids.tolist(), oneshot.s_ids.tolist()))
        with connect(server.address) as c:
            _register(c)
            cold = c.query("R", "S", eps=EPS)
            assert not cold["cached_result"] and not cold["warm_artifacts"]
            assert sorted(_pairs(cold)) == expected

            hit = c.query("R", "S", eps=EPS)
            assert hit["cached_result"]
            assert sorted(_pairs(hit)) == expected
            assert hit["metrics"] == cold["metrics"]

            # force a re-run through the pipeline: the artifact cache
            # must be warm and the answer still bit-identical
            warm = c.query("R", "S", eps=EPS, reuse_results=False)
            assert not warm["cached_result"] and warm["warm_artifacts"]
            assert sorted(_pairs(warm)) == expected
            assert _deterministic(warm["metrics"]) == _deterministic(
                cold["metrics"]
            )
            # the warm build skips construction entirely: its measured
            # build stage must be a blip next to the cold one
            assert (
                warm["metrics"]["stage_times"]["build_partition"]
                < cold["metrics"]["stage_times"]["build_partition"]
            )

            stats = c.stats()
            assert stats["artifact_cache"]["hits"] > 0
            assert stats["result_cache"]["hits"] > 0
            assert stats["serving"]["cold_builds"] == 1
            assert stats["serving"]["warm_builds"] == 1

    def test_distinct_configs_do_not_share_results(self, server, inputs):
        r, s = inputs
        other = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r"))
        with connect(server.address) as c:
            _register(c)
            got = c.query("R", "S", eps=EPS, method="uni_r")
            assert sorted(_pairs(got)) == sorted(
                zip(other.r_ids.tolist(), other.s_ids.tolist())
            )
            assert got["metrics"]["method"] == "uni_r"

    def test_max_pairs_truncates_payload_not_count(self, server, oneshot):
        with connect(server.address) as c:
            _register(c)
            got = c.query("R", "S", eps=EPS, max_pairs=5)
            assert got["results"] == len(oneshot.r_ids)
            assert len(got["pairs"]) == 5
            assert got["pairs_truncated"]

    def test_rtree_range_query(self, server, inputs):
        r, _ = inputs
        box = (0.2, 0.2, 0.6, 0.6)
        inside = (
            (r.xs >= box[0]) & (r.xs <= box[2])
            & (r.ys >= box[1]) & (r.ys <= box[3])
        )
        expected = sorted(r.ids[inside].tolist())
        with connect(server.address) as c:
            _register(c)
            got = c.range("R", box)
            assert got["count"] == len(expected)
            assert got["ids"] == expected
            again = c.range("R", box)
            assert again["ids"] == expected
            # second call reuses the cached index
            stats = c.stats()["artifact_cache"]
            assert stats["hits"] >= 1


@pytest.mark.serving
class TestConcurrency:
    def test_concurrent_queries_interleave_hits_and_misses(
        self, server, oneshot, inputs
    ):
        """Acceptance: >= 2 concurrent queries, answers bit-identical,
        cache hits and misses interleaved across client threads."""
        r, s = inputs
        other = distance_join(r, s, JoinConfig(eps=0.02))
        expected = {
            EPS: sorted(zip(oneshot.r_ids.tolist(), oneshot.s_ids.tolist())),
            0.02: sorted(zip(other.r_ids.tolist(), other.s_ids.tolist())),
        }
        with connect(server.address) as c:
            _register(c)
        jobs = [EPS, 0.02, EPS, 0.02, EPS, 0.02]
        outcomes: list = [None] * len(jobs)

        def worker(i, eps):
            with connect(server.address) as c:
                outcomes[i] = (eps, c.query("R", "S", eps=eps))

        threads = [
            threading.Thread(target=worker, args=(i, eps))
            for i, eps in enumerate(jobs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=50)
        assert all(o is not None for o in outcomes)
        for eps, response in outcomes:
            assert sorted(_pairs(response)) == expected[eps]
        with connect(server.address) as c:
            stats = c.stats()
        serving = stats["serving"]
        assert serving["queries"] == len(jobs)
        # both keys were built at most once; everything else was a
        # result-cache hit or a coalesced flight
        assert serving["cold_builds"] + serving["warm_builds"] <= 4
        reused = (
            serving["result_cache_hits"] + stats["admission"]["coalesced"]
        )
        assert reused >= len(jobs) - 2

    def test_identical_inflight_queries_coalesce(self, server):
        with connect(server.address) as c:
            _register(c)
        results: list = [None] * 3

        def worker(i):
            with connect(server.address) as c:
                # reuse_results=False forces the pipeline every time, so
                # concurrent identical queries must share one flight
                results[i] = c.query(
                    "R", "S", eps=0.02, reuse_results=False
                )

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=50)
        assert all(r is not None for r in results)
        first = sorted(_pairs(results[0]))
        assert all(sorted(_pairs(r)) == first for r in results)
        with connect(server.address) as c:
            stats = c.stats()
        assert (
            stats["admission"]["coalesced"]
            + stats["serving"]["result_cache_hits"]
        ) >= 1


@pytest.mark.serving
class TestEviction:
    def test_artifact_cache_eviction_under_budget(self):
        """A tiny artifact budget evicts bundles but never corrupts."""
        handle = start_in_thread(
            ServerConfig(backend="serial", cache_budget_bytes=1000)
        )
        try:
            with connect(handle.address) as c:
                _register(c)
                a = c.query("R", "S", eps=EPS, reuse_results=False)
                b = c.query("R", "S", eps=0.02, reuse_results=False)
                again = c.query("R", "S", eps=EPS, reuse_results=False)
                assert sorted(_pairs(a)) == sorted(_pairs(again))
                stats = c.stats()["artifact_cache"]
                assert stats["evictions"] >= 1
                assert stats["entries"] == 1  # budget keeps one bundle
                assert b["results"] != 0
        finally:
            handle.stop()

    def test_result_cache_eviction_falls_back_to_rerun(self):
        """Dropped result blocks are re-computed, not served as holes."""
        handle = start_in_thread(
            ServerConfig(backend="serial", result_cache_bytes=64)
        )
        try:
            with connect(handle.address) as c:
                _register(c)
                first = c.query("R", "S", eps=EPS)
                second = c.query("R", "S", eps=EPS)
                # the block was too big to stay resident: the second
                # query re-ran the pipeline (warm artifacts) instead of
                # serving a dropped block
                assert not second["cached_result"]
                assert second["warm_artifacts"]
                assert sorted(_pairs(second)) == sorted(_pairs(first))
        finally:
            handle.stop()


@pytest.mark.serving
class TestProtocolValidation:
    def test_one_shot_flags_rejected_with_clear_error(self, server):
        with connect(server.address) as c:
            _register(c)
            with pytest.raises(ServerError, match="one-shot"):
                c.query("R", "S", eps=EPS, faults="kill:p=1")
            with pytest.raises(ServerError, match="one-shot"):
                c.query("R", "S", eps=EPS, spill="disk")
            with pytest.raises(ServerError, match="one-shot"):
                c.query("R", "S", eps=EPS, backend="cluster")

    def test_unknown_fields_and_bad_values_rejected(self, server):
        with connect(server.address) as c:
            _register(c)
            with pytest.raises(ServerError, match="unknown query field"):
                c.query("R", "S", eps=EPS, blorp=3)
            with pytest.raises(ServerError, match="eps must be positive"):
                c.query("R", "S", eps=-1.0)
            with pytest.raises(ServerError, match="method must be one of"):
                c.query("R", "S", eps=EPS, method="bogus")
            with pytest.raises(ServerError, match="not registered"):
                c.query("R", "missing", eps=EPS)

    def test_malformed_requests_get_protocol_errors(self, server):
        import socket as socketlib

        path = server.socket_path
        with socketlib.socket(
            socketlib.AF_UNIX, socketlib.SOCK_STREAM
        ) as sock:
            sock.settimeout(10)
            sock.connect(path)
            sock.sendall(b"this is not json\n")
            reply = sock.makefile("rb").readline()
            assert b'"ok":false' in reply.replace(b" ", b"")
            assert b"JSON" in reply

    def test_server_config_validation(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ServerConfig(socket_path="/tmp/x.sock", port=1234)
        with pytest.raises(ValueError, match="serving backend"):
            ServerConfig(backend="ray")
        # the cluster backend is servable since the observability PR
        # (daemon health feeds the stats op and the exporter)
        assert ServerConfig(backend="cluster").backend == "cluster"
        with pytest.raises(ValueError, match="port"):
            ServerConfig(port=99999)
        with pytest.raises(ValueError, match="max_inflight"):
            ServerConfig(max_inflight=0)
        with pytest.raises(ValueError, match="metrics_port"):
            ServerConfig(metrics_port=70000)
        with pytest.raises(ValueError, match="history_retain_files"):
            ServerConfig(history_retain_files=0)
        with pytest.raises(ValueError, match="p95"):
            ServerConfig(slo_p95_seconds=-1.0)


@pytest.mark.serving
class TestTcpAndTelemetry:
    def test_tcp_front_end(self, oneshot):
        handle = start_in_thread(ServerConfig(port=18472))
        try:
            assert handle.address == {"host": "127.0.0.1", "port": 18472}
            with connect(handle.address) as c:
                _register(c)
                got = c.query("R", "S", eps=EPS)
                assert got["results"] == len(oneshot.r_ids)
        finally:
            handle.stop()

    def test_per_request_run_ids_and_report(self, server):
        with connect(server.address) as c:
            _register(c)
            a = c.query("R", "S", eps=EPS, trace=True, report=True)
            b = c.query(
                "R", "S", eps=EPS, trace=True, reuse_results=False
            )
            assert a["run_id"] and b["run_id"]
            assert a["run_id"] != b["run_id"]  # one run id per request
            assert a["spans"] > 0
            assert "stage" in a["report"] or "run " in a["report"]


# ----------------------------------------------------------------------
# hygiene: stale server state dirs and sockets
# ----------------------------------------------------------------------
class TestServingHygiene:
    def test_sweeps_stale_server_dir_and_socket(self, tmp_path):
        root = str(tmp_path)
        dead_pid = 2_000_000_000  # far beyond pid_max: provably dead
        stale_dir = tmp_path / f"{SERVE_PREFIX}abc123"
        stale_dir.mkdir()
        write_owner_marker(str(stale_dir), pid=dead_pid)
        stale_sock = tmp_path / f"{SERVE_PREFIX}{dead_pid}.sock"
        stale_sock.touch()

        live_dir = tmp_path / f"{SERVE_PREFIX}live"
        live_dir.mkdir()
        write_owner_marker(str(live_dir))  # owned by this (live) process
        live_sock = tmp_path / f"{SERVE_PREFIX}{os.getpid()}.sock"
        live_sock.touch()
        unmarked = tmp_path / f"{SERVE_PREFIX}unmarked"
        unmarked.mkdir()

        report = sweep_stale_resources(tmp_root=root, shm_dir=str(tmp_path))
        assert str(stale_dir) in report["dirs_removed"]
        assert str(stale_sock) in report["sockets_removed"]
        assert not stale_dir.exists() and not stale_sock.exists()
        assert live_dir.exists() and live_sock.exists()
        assert unmarked.exists()  # no owner marker: never touched

    def test_socket_owner_parsing(self):
        from repro.engine.hygiene import server_socket_owner

        assert server_socket_owner("repro-serve-1234.sock") == 1234
        assert server_socket_owner("repro-serve-1234-extra.sock") == 1234
        assert server_socket_owner("repro-serve-x.sock") is None
        assert server_socket_owner("other-1234.sock") is None
        assert server_socket_owner("repro-serve-1234") is None

    @pytest.mark.serving
    def test_server_start_and_stop_leave_no_state_behind(self):
        handle = start_in_thread(ServerConfig(backend="serial"))
        state_dir = handle.server._state_dir
        sock = handle.socket_path
        assert state_dir is not None and os.path.isdir(state_dir)
        assert sock is not None and os.path.exists(sock)
        handle.stop()
        assert not os.path.exists(sock)
        assert not os.path.isdir(state_dir)


# ----------------------------------------------------------------------
# perfsmoke: the caches must actually pay for themselves
# ----------------------------------------------------------------------
@pytest.mark.perfsmoke
@pytest.mark.serving
class TestServingPerfSmoke:
    def test_warm_query_beats_cold_by_pinned_factor(self, server):
        with connect(server.address) as c:
            _register(c)
            t0 = time.perf_counter()
            cold = c.query("R", "S", eps=EPS, max_pairs=0)
            cold_elapsed = time.perf_counter() - t0
            assert not cold["cached_result"]

            best_warm = float("inf")
            for _ in range(3):
                t0 = time.perf_counter()
                warm = c.query("R", "S", eps=EPS, max_pairs=0)
                best_warm = min(best_warm, time.perf_counter() - t0)
                assert warm["cached_result"]
        # a result-cache hit skips the whole pipeline; even on a loaded
        # 1-CPU CI box it must beat the cold build by 5x end to end
        assert best_warm < cold_elapsed / 5, (
            f"warm {best_warm * 1000:.1f}ms vs cold "
            f"{cold_elapsed * 1000:.1f}ms: the result cache is not paying"
        )
