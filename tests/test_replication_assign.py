"""Unit tests for adaptive point replication (Algorithms 2-4)."""

import numpy as np
import pytest

from repro.agreements.marking import generate_duplicate_free_graph
from repro.geometry.point import Side
from repro.replication.assign import AdaptiveAssigner, count_replicas, medupar, supar
from tests.conftest import make_graph


@pytest.fixture
def uniform_r_assigner(grid2x2):
    graph = make_graph(grid2x2, Side.R)
    generate_duplicate_free_graph(graph)
    return AdaptiveAssigner(grid2x2, graph)


class TestAssignBasics:
    def test_interior_point_native_only(self, grid2x2, uniform_r_assigner):
        assert uniform_r_assigner.assign(1.0, 1.0, Side.R) == (grid2x2.cell_id(0, 0),)
        assert uniform_r_assigner.assign(1.0, 1.0, Side.S) == (grid2x2.cell_id(0, 0),)

    def test_native_cell_always_first(self, grid2x2, uniform_r_assigner):
        cells = uniform_r_assigner.assign(2.3, 1.0, Side.R)
        assert cells[0] == grid2x2.cell_id(0, 0)

    def test_plain_replication_gated_by_type(self, grid2x2, uniform_r_assigner):
        # point in cell (0,0), within eps of the east border only
        r_cells = uniform_r_assigner.assign(2.3, 1.0, Side.R)
        s_cells = uniform_r_assigner.assign(2.3, 1.0, Side.S)
        assert grid2x2.cell_id(1, 0) in r_cells
        assert s_cells == (grid2x2.cell_id(0, 0),)

    def test_merged_square_replicates_to_three_cells(self, grid2x2, uniform_r_assigner):
        # point in the eps-square at the corner (2.5, 2.5), close enough for
        # the diagonal as well
        cells = uniform_r_assigner.assign(2.2, 2.2, Side.R)
        assert set(cells) == {0, 1, 2, 3}

    def test_square_zone_beyond_corner_disc(self, grid2x2, uniform_r_assigner):
        # within eps of both borders but farther than eps from the corner:
        # replicate to the two side cells, not the diagonal
        cells = uniform_r_assigner.assign(1.6, 1.8, Side.R)
        assert set(cells) == {
            grid2x2.cell_id(0, 0),
            grid2x2.cell_id(1, 0),
            grid2x2.cell_id(0, 1),
        }

    def test_uniform_s_ignores_r_points(self, grid2x2):
        graph = make_graph(grid2x2, Side.S)
        generate_duplicate_free_graph(graph)
        assigner = AdaptiveAssigner(grid2x2, graph)
        assert assigner.assign(2.2, 2.2, Side.R) == (grid2x2.cell_id(0, 0),)
        assert len(assigner.assign(2.2, 2.2, Side.S)) == 4

    def test_at_most_four_assignments(self, grid4x4):
        graph = make_graph(grid4x4, Side.R)
        generate_duplicate_free_graph(graph)
        assigner = AdaptiveAssigner(grid4x4, graph)
        rng = np.random.default_rng(1)
        for x, y in rng.uniform(0, 10, size=(500, 2)):
            cells = assigner.assign(float(x), float(y), Side.R)
            assert 1 <= len(cells) <= 4
            assert len(set(cells)) == len(cells)


class TestMeDuPAr:
    def test_unmarked_uniform_square_point(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        native = grid2x2.cell_id(0, 0)
        # in the square, within eps of the reference point
        cells = medupar(sub, 2.2, 2.2, Side.R, native, grid2x2.eps)
        assert cells == {1, 2, 3}

    def test_type_mismatch_yields_nothing(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        assert medupar(sub, 2.2, 2.2, Side.S, grid2x2.cell_id(0, 0), 1.0) == set()

    def test_marked_side_edge_excludes_destination(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        native, east = grid2x2.cell_id(0, 0), grid2x2.cell_id(1, 0)
        sub.edge(native, east).marked = True
        cells = medupar(sub, 2.2, 2.2, Side.R, native, grid2x2.eps)
        assert east not in cells

    def test_marked_side_edge_redirects_to_diagonal(self, grid2x2):
        """Beyond eps of the reference point the diagonal is normally not a
        target, but a marked same-type side edge redirects there."""
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        native, east = grid2x2.cell_id(0, 0), grid2x2.cell_id(1, 0)
        diag = grid2x2.cell_id(1, 1)
        # without marks: no diagonal (d(o, ref) > eps)
        assert diag not in medupar(sub, 1.6, 1.8, Side.R, native, grid2x2.eps)
        sub.edge(native, east).marked = True
        assert diag in medupar(sub, 1.6, 1.8, Side.R, native, grid2x2.eps)

    def test_marked_diagonal_edge_blocks_diagonal(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        sub = graph.quartet((1, 1))
        native, diag = grid2x2.cell_id(0, 0), grid2x2.cell_id(1, 1)
        sub.edge(native, diag).marked = True
        assert diag not in medupar(sub, 2.2, 2.2, Side.R, native, grid2x2.eps)


class TestSupAr:
    def _fig4_setup(self, grid2x2):
        """The Lemma 4.8 configuration: C replicates S to both A and B,
        R crosses between A and B; marking e_CB creates B's supplementary
        area (Fig. 5b)."""
        from repro.agreements.graph import AgreementGraph

        a = grid2x2.cell_id(0, 0)  # bl
        b = grid2x2.cell_id(1, 0)  # br
        c = grid2x2.cell_id(1, 1)  # tr, diagonal to A
        d = grid2x2.cell_id(0, 1)  # tl
        types = {
            frozenset((a, b)): Side.R,
            frozenset((c, a)): Side.S,
            frozenset((c, b)): Side.S,
            frozenset((c, d)): Side.S,
            frozenset((a, d)): Side.S,
            frozenset((b, d)): Side.S,
        }
        graph = AgreementGraph(grid2x2, types)
        sub = graph.quartet((1, 1))
        sub.edge(c, b).marked = True
        return graph, sub, a, b, c

    def test_force_replication_fires(self, grid2x2):
        graph, sub, a, b, c = self._fig4_setup(grid2x2)
        # r in B: within eps of C's border (y), beyond eps of A (x > 2.5+1),
        # within 2 eps of the reference point
        x, y = 3.7, 2.3
        cells = supar(sub, x, y, Side.R, b, grid2x2)
        assert cells == {a}

    def test_no_force_replication_without_mark(self, grid2x2):
        graph, sub, a, b, c = self._fig4_setup(grid2x2)
        sub.edge(c, b).marked = False
        assert supar(sub, 3.7, 2.3, Side.R, b, grid2x2) == set()

    def test_same_type_point_not_forced(self, grid2x2):
        graph, sub, a, b, c = self._fig4_setup(grid2x2)
        assert supar(sub, 3.7, 2.3, Side.S, b, grid2x2) == set()

    def test_beyond_two_eps_not_forced(self, grid2x2):
        graph, sub, a, b, c = self._fig4_setup(grid2x2)
        assert supar(sub, 4.8, 2.3, Side.R, b, grid2x2) == set()

    def test_native_cell_outside_quartet(self, grid3x2):
        graph = make_graph(grid3x2, Side.R)
        sub = graph.quartet((1, 1))
        outside = grid3x2.cell_id(2, 0)
        assert supar(sub, 6.0, 1.0, Side.R, outside, grid3x2) == set()


class TestBatch:
    def test_batch_matches_per_point(self, grid4x4):
        import random

        rng = random.Random(5)
        pairs = [frozenset(p[:2]) for p in grid4x4.adjacent_pairs()]
        types = [rng.choice([Side.R, Side.S]) for _ in pairs]
        graph = make_graph(grid4x4, types)
        generate_duplicate_free_graph(graph)
        assigner = AdaptiveAssigner(grid4x4, graph)
        nprng = np.random.default_rng(9)
        xs = nprng.uniform(0, 10, 400)
        ys = nprng.uniform(0, 10, 400)
        for side in Side:
            cells, idxs = assigner.assign_batch(xs, ys, side)
            got = {}
            for c, i in zip(cells.tolist(), idxs.tolist()):
                got.setdefault(i, set()).add(c)
            for i in range(400):
                expected = set(assigner.assign(float(xs[i]), float(ys[i]), side))
                assert got[i] == expected, i

    def test_count_replicas(self):
        assert count_replicas([(1,), (1, 2), (3, 4, 5)]) == 3

    def test_compiled_fast_path_equals_reference(self, grid4x4):
        """The precompiled-plan path must agree with the literal
        Algorithm 2/3/4 implementation everywhere."""
        import random

        rng = random.Random(123)
        pairs = [frozenset(p[:2]) for p in grid4x4.adjacent_pairs()]
        types = [rng.choice([Side.R, Side.S]) for _ in pairs]
        graph = make_graph(grid4x4, types)
        generate_duplicate_free_graph(graph)
        assigner = AdaptiveAssigner(grid4x4, graph)
        nprng = np.random.default_rng(77)
        for x, y in nprng.uniform(0, 10, size=(800, 2)):
            for side in Side:
                assert assigner.assign(float(x), float(y), side) == (
                    assigner._assign_fast(float(x), float(y), side)
                )


def test_mismatched_grid_rejected(grid2x2, grid4x4):
    graph = make_graph(grid2x2, Side.R)
    with pytest.raises(ValueError):
        AdaptiveAssigner(grid4x4, graph)
