"""Tests for the attribute post-processing cost model (Table 5)."""

import pytest

from repro.data.generators import gaussian_clusters
from repro.joins.postprocess import post_process_attributes


@pytest.fixture(scope="module")
def sets():
    r = gaussian_clusters(2000, seed=71, payload_bytes=64, name="R")
    s = gaussian_clusters(2000, seed=72, payload_bytes=64, name="S")
    return r, s


class TestPostProcessModel:
    def test_cost_grows_with_result_count(self, sets):
        r, s = sets
        small = post_process_attributes(1_000, r, s, num_workers=12)
        large = post_process_attributes(100_000, r, s, num_workers=12)
        assert large.time_model > small.time_model
        assert large.shuffle_bytes > small.shuffle_bytes

    def test_cost_grows_with_payload(self, sets):
        r, s = sets
        lean = post_process_attributes(10_000, r.with_payload(0), s.with_payload(0), 12)
        fat = post_process_attributes(10_000, r.with_payload(512), s.with_payload(512), 12)
        assert fat.time_model > lean.time_model

    def test_remote_fraction(self, sets):
        r, s = sets
        rep = post_process_attributes(10_000, r, s, num_workers=4)
        assert rep.remote_bytes == pytest.approx(rep.shuffle_bytes * 3 / 4, rel=0.01)

    def test_includes_both_input_sets(self, sets):
        r, s = sets
        rep = post_process_attributes(0, r, s, num_workers=12)
        assert rep.records >= len(r) + len(s)

    def test_more_workers_faster(self, sets):
        r, s = sets
        slow = post_process_attributes(50_000, r, s, num_workers=4)
        fast = post_process_attributes(50_000, r, s, num_workers=16)
        assert fast.time_model < slow.time_model
