"""Tests for ``repro.obs``: continuous observability over the join system.

Covers the four tentpole pieces and their serving integration:

* :class:`RunHistory` -- append/replay round trips, logrotate-style
  retention, crash-tolerant readers (a partial trailing line is skipped
  and counted, never raised), and the replay path into
  ``repro.planner.accuracy.replay_reports``;
* the Prometheus exporter -- the metrics-name lint (every family the
  join server exports has help text, a snake_case ``repro_`` prefix and
  a stable unit suffix), and the text exposition format itself
  (cumulative buckets, ``+Inf`` == count, label escaping) validated by
  an independent parser;
* the SLO watchdog -- edge-triggered breach/recovery transitions on a
  fake clock, window expiry, and the error-rate objective;
* ``repro top`` -- the pure renderer over a stats payload and the
  polling dashboard against a live server;
* serving integration -- history written by real served queries replays
  into per-phase planner clock errors, the scrape endpoint answers HTTP,
  a ``shutdown`` op and a SIGTERM both leave a fully-parseable history
  file, and observability never changes the join answer (bit-identity)
  nor costs more than 2% of a query (perfsmoke).
"""

from __future__ import annotations

import io
import json
import logging
import os
import signal
import subprocess
import sys
import time
import urllib.request

import numpy as np
import pytest

from repro.data.datasets import load_dataset
from repro.engine.telemetry import (
    MetricsRegistry,
    Span,
    Telemetry,
    validate_span_tree,
)
from repro.joins.distance_join import JoinConfig, distance_join
from repro.obs import (
    MetricsExporter,
    RunHistory,
    SLOConfig,
    SLOWatchdog,
    TopDashboard,
    render_stats,
    validate_metric_name,
)
from repro.obs.exporter import CONTENT_TYPE
from repro.planner.accuracy import replay_reports
from repro.serving import (
    JoinClient,
    JoinServer,
    ServerConfig,
    ServerError,
    start_in_thread,
)

BASE_N = 1200
EPS = 0.012

SRC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _report(run_id="r-1", predicted=None, modelled=None) -> dict:
    """A minimal RunReport.to_json()-shaped dict for store tests."""
    stages = []
    for stage, secs in (modelled or {}).items():
        stages.append(
            {"stage": stage, "wall_seconds": secs, "modelled_seconds": secs}
        )
    report = {
        "header": {"run_id": run_id, "wall_seconds": 0.01, "spans": 3},
        "stages": stages,
        "workers": [],
        "recovery": [],
        "shuffle_matrix": None,
        "planner": {"predicted": predicted} if predicted else None,
        "metrics": {},
    }
    return report


# ----------------------------------------------------------------------
# RunHistory
# ----------------------------------------------------------------------
class TestRunHistory:
    def test_append_and_replay_round_trip(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        history = RunHistory(path)
        for i in range(3):
            rid = history.append_report(_report(run_id=f"run-{i}"))
            assert rid == f"run-{i}"
        history.flush()
        reports = list(history.reports())
        assert len(reports) == 3
        assert [r["header"]["run_id"] for r in reports] == [
            "run-0", "run-1", "run-2"
        ]
        assert history.run_ids() == ["run-0", "run-1", "run-2"]
        assert history.get("run-1")["header"]["run_id"] == "run-1"
        assert history.get("nope") is None
        stats = history.stats()
        assert stats["appended"] == 3
        assert stats["rotations"] == 0
        assert stats["corrupt_lines"] == 0
        history.close()

    def test_rotation_bounds_disk(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        history = RunHistory(path, max_bytes=2_000, retain_files=2)
        for i in range(50):
            history.append_report(_report(run_id=f"run-{i}"))
        stats = history.stats()
        assert stats["rotations"] >= 2
        files = history.files()
        # at most retain_files rotated generations plus the active file
        assert 1 <= len(files) <= 3
        assert files[-1] == path  # active file is newest
        for f in files:
            assert os.path.getsize(f) <= 2_000 + 512
        # entries stay oldest-first and parse across generations
        ids = history.run_ids()
        assert ids == sorted(ids, key=lambda s: int(s.split("-")[1]))
        assert ids[-1] == "run-49"
        history.close()

    def test_corrupt_and_partial_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        history = RunHistory(path)
        history.append_report(_report(run_id="good-1"))
        history.close()
        with open(path, "a") as fh:
            fh.write("this is not json\n")
            fh.write(json.dumps({"type": "wrong_kind"}) + "\n")
        reader = RunHistory(path)
        reader.append_report(_report(run_id="good-2"))
        # simulate a crash mid-append: a final line with no newline
        with open(path, "a") as fh:
            fh.write('{"type": "run_report", "run_id": "torn", "repo')
        ids = reader.run_ids()
        assert ids == ["good-1", "good-2"]
        assert reader.stats()["corrupt_lines"] == 3
        reader.close()

    def test_close_is_idempotent_and_final(self, tmp_path):
        path = str(tmp_path / "history.jsonl")
        with RunHistory(path) as history:
            history.append_report(_report())
        history.close()  # second close is a no-op
        assert history.stats()["closed"]
        with pytest.raises(ValueError, match="closed"):
            history.append_report(_report())

    def test_replays_through_planner_accuracy(self, tmp_path):
        history = RunHistory(str(tmp_path / "history.jsonl"))
        for i in range(3):
            history.append_report(
                _report(
                    run_id=f"run-{i}",
                    predicted={"construction": 0.5, "join": 1.0},
                    modelled={"shuffle": 0.6, "local_join": 0.9},
                )
            )
        errors = replay_reports(history.reports())
        phases = [e.phase for e in errors]
        assert phases.count("construction") == 3
        assert phases.count("join") == 3
        assert phases.count("total") == 3
        for err in errors:
            assert np.isfinite(err.relative_error)
        history.close()


# ----------------------------------------------------------------------
# metric naming lint
# ----------------------------------------------------------------------
class TestMetricNameLint:
    @pytest.mark.parametrize("name,kind", [
        ("repro_queries_total", "counter"),
        ("repro_query_latency_seconds", "histogram"),
        ("repro_cache_bytes", "gauge"),
        ("repro_planner_clock_error_ratio", "histogram"),
        ("repro_admission_inflight", "gauge"),
    ])
    def test_accepts_conforming_names(self, name, kind):
        validate_metric_name(name, kind)

    @pytest.mark.parametrize("name,kind", [
        ("queries_total", "counter"),          # missing repro_ prefix
        ("repro_Queries_total", "counter"),    # not snake_case
        ("repro__queries_total", "counter"),   # double underscore
        ("repro_queries", "counter"),          # counter without _total
        ("repro_uptime_total", "gauge"),       # gauge stealing _total
        ("repro_latency", "histogram"),        # histogram without a unit
        ("repro_seconds_latency", "gauge"),    # unit word not terminal
        ("repro_queries_total", "bogus"),      # unknown kind
    ])
    def test_rejects_malformed_names(self, name, kind):
        with pytest.raises(ValueError):
            validate_metric_name(name, kind)

    def test_exporter_enforces_lint_at_registration(self):
        ex = MetricsExporter()
        with pytest.raises(ValueError, match="_total"):
            ex.register("repro_bad", "counter", "help", lambda: 0)
        with pytest.raises(ValueError, match="help"):
            ex.register("repro_ok_total", "counter", "  ", lambda: 0)
        ex.register("repro_ok_total", "counter", "fine", lambda: 0)
        with pytest.raises(ValueError, match="twice"):
            ex.register("repro_ok_total", "counter", "fine", lambda: 0)

    def test_every_server_metric_passes_the_lint(self):
        """The satellite lint: every family the join server exports obeys
        the naming contract -- help text, prefix, unit suffixes."""
        server = JoinServer(ServerConfig())
        specs = server.exporter.specs()
        assert len(specs) >= 20  # the server exports a real surface
        names = [spec.name for spec in specs]
        assert len(names) == len(set(names)), "duplicate family names"
        for spec in specs:
            validate_metric_name(spec.name, spec.kind)  # raises on breach
            assert spec.help.strip(), f"{spec.name} has no help text"
            assert spec.kind in ("counter", "gauge", "histogram")


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------
def _parse_prometheus(text: str) -> dict:
    """Tiny independent parser: family -> {type, help, samples{name+labels: value}}."""
    families: dict = {}
    current = None
    for line in text.splitlines():
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            current = families.setdefault(
                name, {"help": help_text, "type": None, "samples": {}}
            )
            current["help"] = help_text
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            families.setdefault(
                name, {"help": "", "type": None, "samples": {}}
            )["type"] = kind
        else:
            assert not line.startswith("#"), f"unknown comment: {line!r}"
            key, _, value = line.rpartition(" ")
            assert key and value, f"malformed sample line: {line!r}"
            base = key.split("{")[0]
            family = base
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix) and base[: -len(suffix)] in families:
                    family = base[: -len(suffix)]
            assert family in families, f"sample before HELP/TYPE: {line!r}"
            families[family]["samples"][key] = float(value)
    return families


class TestExporterRender:
    def test_render_parses_and_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", (0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(v)
        ex = MetricsExporter()
        ex.register("repro_things_total", "counter", "Things.", lambda: 7)
        ex.register("repro_depth", "gauge", "Depth.", lambda: 3.5)
        ex.register(
            "repro_latency_seconds", "histogram", "Latency.", lambda: hist
        )
        ex.register(
            "repro_labeled_total", "counter", "Labeled.",
            lambda: [({"cache": 'a"b\n'}, 1.0), ({"cache": "plain"}, 2.0)],
        )
        text = ex.render()
        families = _parse_prometheus(text)

        assert families["repro_things_total"]["type"] == "counter"
        assert families["repro_things_total"]["samples"]["repro_things_total"] == 7
        assert families["repro_depth"]["samples"]["repro_depth"] == 3.5

        lat = families["repro_latency_seconds"]
        assert lat["type"] == "histogram"
        buckets = [
            v for k, v in lat["samples"].items() if "_bucket" in k
        ]
        assert buckets == sorted(buckets), "buckets must be cumulative"
        inf = lat["samples"]['repro_latency_seconds_bucket{le="+Inf"}']
        assert inf == lat["samples"]["repro_latency_seconds_count"] == 5
        assert lat["samples"]["repro_latency_seconds_sum"] == pytest.approx(
            0.05 + 0.5 + 0.5 + 5.0 + 50.0
        )

        labeled = families["repro_labeled_total"]["samples"]
        assert labeled['repro_labeled_total{cache="a\\"b\\n"}'] == 1.0
        assert labeled['repro_labeled_total{cache="plain"}'] == 2.0

    def test_broken_collector_is_skipped_and_counted(self):
        ex = MetricsExporter()

        def boom():
            raise RuntimeError("broken gauge")

        ex.register("repro_broken", "gauge", "Always raises.", boom)
        ex.register("repro_fine", "gauge", "Fine.", lambda: 1)
        ex.register("repro_absent", "gauge", "Off feature.", lambda: None)
        text = ex.render()
        assert "repro_broken" not in text.replace("# HELP", "")
        families = _parse_prometheus(ex.render())
        assert families["repro_fine"]["samples"]["repro_fine"] == 1
        assert "repro_absent" not in families
        # the error counter is collected before the broken gauge raises,
        # so scrape N reports the errors of scrapes 1..N-1: two renders
        # have happened, the second saw the first's error
        assert (
            _parse_prometheus(ex.render())[
                "repro_exporter_collect_errors_total"
            ]["samples"]["repro_exporter_collect_errors_total"]
            == 2
        )


# ----------------------------------------------------------------------
# SLO watchdog
# ----------------------------------------------------------------------
class TestSLOWatchdog:
    def test_config_validation(self):
        with pytest.raises(ValueError, match="window"):
            SLOConfig(window_seconds=0)
        with pytest.raises(ValueError, match="p95"):
            SLOConfig(p95_seconds=-1)
        with pytest.raises(ValueError, match="error_rate"):
            SLOConfig(error_rate=1.5)
        with pytest.raises(ValueError, match="min_samples"):
            SLOConfig(min_samples=0)
        assert not SLOConfig().enabled
        assert SLOConfig(p95_seconds=0.5).enabled

    def test_breach_and_recovery_are_edge_triggered(self, caplog):
        clock = [0.0]
        dog = SLOWatchdog(
            SLOConfig(window_seconds=60.0, p95_seconds=0.1, min_samples=3),
            clock=lambda: clock[0],
        )
        with caplog.at_level(logging.INFO, logger="repro"):
            for _ in range(3):
                clock[0] += 1.0
                dog.observe(0.01)
            assert not dog.degraded

            for _ in range(5):
                clock[0] += 1.0
                dog.observe(0.5)  # way past the 100ms p95 objective
            assert dog.degraded
            assert dog.alerts == 1
            breaches = [
                r for r in caplog.records if "SLO breach" in r.getMessage()
            ]
            assert len(breaches) == 1  # edge-triggered, not per-query
            assert breaches[0].levelno == logging.WARNING
            assert "p95" in breaches[0].getMessage()

            # continued breach: still one alert, no extra warnings
            clock[0] += 1.0
            dog.observe(0.5)
            assert dog.alerts == 1

            # window slides past the slow samples -> recovery logged once
            clock[0] += 120.0
            for _ in range(5):
                clock[0] += 1.0
                dog.observe(0.01)
            assert not dog.degraded
            recoveries = [
                r for r in caplog.records if "SLO recovered" in r.getMessage()
            ]
            assert len(recoveries) == 1
        status = dog.status()
        assert status["alerts"] == 1 and status["recoveries"] == 1
        assert status["window"]["p95_seconds"] <= 0.1

    def test_error_rate_objective_counts_failures(self):
        clock = [0.0]
        dog = SLOWatchdog(
            SLOConfig(window_seconds=60.0, error_rate=0.2, min_samples=5),
            clock=lambda: clock[0],
        )
        for _ in range(8):
            clock[0] += 0.1
            dog.observe(0.01)
        assert not dog.degraded
        for _ in range(4):
            clock[0] += 0.1
            dog.observe(0.0, failed=True)
        assert dog.degraded
        status = dog.status()
        assert status["window"]["failures"] == 4
        assert status["window"]["error_rate"] > 0.2
        # failed samples never pollute the latency percentiles
        assert status["window"]["p95_seconds"] == pytest.approx(0.01)

    def test_min_samples_suppresses_flapping(self):
        dog = SLOWatchdog(SLOConfig(p95_seconds=0.1, min_samples=5))
        for _ in range(4):
            dog.observe(9.9)
        assert not dog.degraded  # not enough evidence yet
        dog.observe(9.9)
        assert dog.degraded


# ----------------------------------------------------------------------
# repro top (renderer + dashboard loop)
# ----------------------------------------------------------------------
def _stats_payload(queries=10, uptime=100.0):
    return {
        "ok": True,
        "pid": 4242,
        "backend": "serial",
        "uptime_seconds": uptime,
        "queries_total": queries,
        "queries_failed": 1,
        "degraded": False,
        "latency": {
            "count": queries, "p50": 0.01, "p95": 0.05, "p99": 0.09,
            "mean": 0.02, "max": 0.09,
        },
        "artifact_cache": {"hits": 3, "misses": 2, "bytes": 1024},
        "result_cache": {"hits": 1, "misses": 4},
        "plan_cache": {"hits": 0, "misses": 0},
        "admission": {
            "running": 1, "max_inflight": 2, "waiting": 0, "max_queue": 8,
            "rejected": 0, "coalesced": 2,
        },
        "planner_errors": {
            "construction": {"count": 3, "mean": 0.15, "p95": 0.4},
            "join": {"count": 3, "mean": 0.10, "p95": 0.2},
        },
        "cluster": {
            "daemons_spawned": 4, "daemons_lost": 1,
            "daemon_rejoins": 1, "blocks_refetched": 2,
        },
        "slo": {
            "enabled": True, "degraded": True, "alerts": 1,
            "violations": ["p95 0.0500s > 0.0100s"],
            "window": {"p95_seconds": 0.05, "error_rate": 0.1},
        },
        "history": {
            "appended": queries, "active_bytes": 2048, "rotations": 0,
            "path": "/tmp/history.jsonl",
        },
        "datasets": [{"name": "R", "n": 100}, {"name": "S", "n": 100}],
        "metrics_endpoint": "http://127.0.0.1:9100/metrics",
        "serving": {"queries": queries, "queries_failed": 1, "errors": 1},
    }


class TestRenderStats:
    def test_all_sections_render(self):
        text = render_stats(_stats_payload())
        assert "pid 4242" in text and "backend=serial" in text
        for section in ("queries", "latency", "caches", "admission",
                        "plan err", "cluster", "slo", "history",
                        "datasets", "metrics"):
            assert section in text, f"missing section {section!r}"
        assert "R, S" in text
        assert "! p95" in text  # the SLO violation detail line
        assert "10.0ms" in text  # p50 formatting

    def test_deltas_and_rate_against_previous_poll(self):
        prev = _stats_payload(queries=10, uptime=100.0)
        cur = _stats_payload(queries=30, uptime=110.0)
        text = render_stats(cur, prev)
        assert "(+20)" in text      # query delta
        assert "2.00 q/s" in text   # 20 queries over 10 seconds

    def test_degrades_gracefully_on_minimal_payload(self):
        text = render_stats({"pid": 1, "backend": "serial"})
        assert "pid 1" in text
        assert "healthy" in text
        assert "slo" not in text and "history" not in text

    def test_degraded_flag_flips_the_header(self):
        payload = _stats_payload()
        payload["degraded"] = True
        assert "DEGRADED" in render_stats(payload)


class TestTopDashboard:
    def test_renders_frames_with_deltas(self):
        polls = iter([_stats_payload(10, 100.0), _stats_payload(20, 102.0),
                      _stats_payload(30, 104.0)])
        slept = []
        out = io.StringIO()
        dash = TopDashboard(
            lambda: next(polls), interval=0.5, iterations=3, out=out,
            clear=False, sleep=slept.append,
        )
        assert dash.run() == 3
        assert slept == [0.5, 0.5]  # no sleep before the first frame
        text = out.getvalue()
        assert text.count("pid 4242") == 3
        assert "(+10)" in text
        assert "\x1b[2J" not in text

    def test_clear_prefixes_each_frame(self):
        out = io.StringIO()
        TopDashboard(
            _stats_payload, interval=1.0, iterations=2, out=out,
            sleep=lambda _: None,
        ).run()
        assert out.getvalue().count("\x1b[2J") == 2

    def test_keyboard_interrupt_exits_cleanly(self):
        def poll():
            raise KeyboardInterrupt

        out = io.StringIO()
        dash = TopDashboard(poll, interval=1.0, out=out)
        assert dash.run() == 0

    def test_rejects_non_positive_interval(self):
        with pytest.raises(ValueError, match="interval"):
            TopDashboard(lambda: {}, interval=0.0)


# ----------------------------------------------------------------------
# serving integration
# ----------------------------------------------------------------------
def _register(client):
    client.register("R", "R1", base_n=BASE_N)
    client.register("S", "S1", base_n=BASE_N)


@pytest.mark.serving
class TestServerObservability:
    def test_history_replays_planner_clock_errors(self, tmp_path):
        """The acceptance loop: >=3 distinct served queries accumulate in
        the RunHistory and replay into per-phase clock errors."""
        history_path = str(tmp_path / "serve-history.jsonl")
        handle = start_in_thread(
            ServerConfig(backend="serial", history_path=history_path)
        )
        try:
            with JoinClient(socket_path=handle.socket_path) as c:
                _register(c)
                for eps in (0.008, 0.012, 0.016):  # three distinct queries
                    got = c.query("R", "S", eps=eps, tuning="auto")
                    assert got["ok"] and got["results"] > 0
                stats = c.stats()
            assert stats["history"]["appended"] == 3
        finally:
            handle.stop()
        reader = RunHistory(history_path)
        reports = list(reader.reports())
        assert len(reports) == 3
        run_ids = reader.run_ids()
        assert len(set(run_ids)) == 3  # distinct runs, distinct ids
        for report in reports:
            assert report["planner"]["predicted"].keys() >= {
                "construction", "join"
            }
        errors = replay_reports(reports)
        phases = {e.phase for e in errors}
        assert {"construction", "join"} <= phases
        per_phase = [e for e in errors if e.phase == "construction"]
        assert len(per_phase) == 3
        for err in errors:
            assert np.isfinite(err.relative_error)
            payload = err.to_payload()
            assert {"phase", "predicted", "measured"} <= set(payload)

    def test_stats_op_reports_the_observability_surface(self, tmp_path):
        history_path = str(tmp_path / "history.jsonl")
        handle = start_in_thread(
            ServerConfig(
                backend="serial",
                history_path=history_path,
                metrics_port=0,
                slo_p95_seconds=30.0,
                slo_min_samples=1,
            )
        )
        try:
            with JoinClient(socket_path=handle.socket_path) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                with pytest.raises(ServerError):
                    c.query("R", "missing", eps=EPS)
                stats = c.stats()
            assert stats["uptime_seconds"] > 0
            assert stats["queries_total"] == 1
            assert stats["queries_failed"] == 1
            assert stats["degraded"] is False
            assert stats["latency"]["count"] == 1
            assert stats["latency"]["p95"] > 0
            assert stats["slo"]["enabled"] is True
            assert stats["slo"]["observed"] == 2  # 1 ok + 1 failed
            assert stats["history"]["appended"] == 1
            assert stats["history"]["path"] == history_path
            assert stats["metrics_endpoint"].startswith("http://127.0.0.1:")
            assert set(stats["planner_errors"]) == {
                "construction", "join", "total"
            }
            assert stats["cluster"]["daemons_spawned"] == 0
        finally:
            handle.stop()

    def test_metrics_endpoint_serves_valid_prometheus_text(self):
        handle = start_in_thread(
            ServerConfig(backend="serial", metrics_port=0)
        )
        try:
            with JoinClient(socket_path=handle.socket_path) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                endpoint = c.stats()["metrics_endpoint"]
            with urllib.request.urlopen(endpoint, timeout=10) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"] == CONTENT_TYPE
                text = resp.read().decode("utf-8")
            families = _parse_prometheus(text)  # raises on malformed text
            assert families["repro_queries_total"]["samples"][
                "repro_queries_total"
            ] == 1
            latency = families["repro_query_latency_seconds"]
            assert latency["type"] == "histogram"
            assert latency["samples"][
                'repro_query_latency_seconds_bucket{le="+Inf"}'
            ] == latency["samples"]["repro_query_latency_seconds_count"] == 1
            info_keys = [
                k for k in families["repro_server_info"]["samples"]
                if 'backend="serial"' in k
            ]
            assert info_keys, "server info gauge must carry the backend label"
            health = urllib.request.urlopen(
                endpoint.replace("/metrics", "/healthz"), timeout=10
            )
            assert health.status == 200
        finally:
            handle.stop()

    def test_slo_degraded_flag_reaches_stats(self):
        handle = start_in_thread(
            ServerConfig(
                backend="serial",
                slo_p95_seconds=1e-9,  # everything breaches
                slo_min_samples=1,
            )
        )
        try:
            with JoinClient(socket_path=handle.socket_path) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                stats = c.stats()
            assert stats["degraded"] is True
            assert stats["slo"]["degraded"] is True
            assert stats["slo"]["alerts"] == 1
            assert stats["slo"]["violations"]
        finally:
            handle.stop()

    def test_top_dashboard_renders_a_live_server(self):
        handle = start_in_thread(ServerConfig(backend="serial"))
        try:
            with JoinClient(socket_path=handle.socket_path) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                out = io.StringIO()
                dash = TopDashboard(
                    c.stats, interval=0.05, iterations=2, out=out,
                    clear=False,
                )
                assert dash.run() == 2
                text = out.getvalue()
            assert f"pid {os.getpid()}" in text
            assert "backend=serial" in text
            assert "queries    total 1" in text
            assert "latency" in text and "caches" in text
            assert "datasets   R, S" in text
        finally:
            handle.stop()

    def test_observability_never_changes_the_answer(self, tmp_path):
        """Bit-identity: obs-on serving == obs-off serving == one-shot."""
        r = load_dataset("R1", base_n=BASE_N)
        s = load_dataset("S1", base_n=BASE_N)
        oneshot = distance_join(r, s, JoinConfig(eps=EPS))
        reference = np.column_stack((oneshot.r_ids, oneshot.s_ids))

        def served_pairs(config):
            handle = start_in_thread(config)
            try:
                with JoinClient(socket_path=handle.socket_path) as c:
                    _register(c)
                    return c.query("R", "S", eps=EPS)["pairs"]
            finally:
                handle.stop()

        plain = served_pairs(ServerConfig(backend="serial"))
        observed = served_pairs(
            ServerConfig(
                backend="serial",
                history_path=str(tmp_path / "h.jsonl"),
                metrics_port=0,
                slo_p95_seconds=30.0,
            )
        )
        assert plain == observed
        assert np.array_equal(np.asarray(observed), reference)


# ----------------------------------------------------------------------
# clean shutdown: no partial JSONL lines
# ----------------------------------------------------------------------
def _assert_history_is_whole(path: str, expected_reports: int) -> None:
    """Every line parses, the file ends in a newline, replay works."""
    with open(path, "rb") as fh:
        raw = fh.read()
    assert raw.endswith(b"\n"), "history must end on a complete line"
    lines = raw.decode("utf-8").splitlines()
    assert len(lines) == expected_reports
    for line in lines:
        entry = json.loads(line)  # raises on a torn line
        assert entry["type"] == "run_report"
        assert entry["report"]["header"]["run_id"] == entry["run_id"]
    reader = RunHistory(path)
    assert len(list(reader.reports())) == expected_reports
    assert reader.stats()["corrupt_lines"] == 0
    reader.close()


def _spawn_serve(tmp_path, history_path):
    """Run ``repro serve`` in a subprocess; returns (proc, socket_path)."""
    socket_path = str(tmp_path / "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
            "serve", "--socket", socket_path, "--history", history_path,
            "--quiet", "--no-sweep",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.time() + 30
    while not os.path.exists(socket_path):
        if proc.poll() is not None:
            raise AssertionError("serve subprocess died before binding")
        if time.time() > deadline:
            proc.kill()
            raise AssertionError("serve subprocess never bound its socket")
        time.sleep(0.05)
    return proc, socket_path


@pytest.mark.serving
class TestCleanShutdown:
    @pytest.mark.timeout(120)
    def test_shutdown_op_flushes_history(self, tmp_path):
        history_path = str(tmp_path / "history.jsonl")
        proc, socket_path = _spawn_serve(tmp_path, history_path)
        try:
            with JoinClient(socket_path=socket_path, timeout=60.0) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                c.query("R", "S", eps=0.016)
                c.shutdown()
            assert proc.wait(timeout=30) == 0
            _assert_history_is_whole(history_path, expected_reports=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    @pytest.mark.timeout(120)
    def test_sigterm_flushes_history(self, tmp_path):
        history_path = str(tmp_path / "history.jsonl")
        proc, socket_path = _spawn_serve(tmp_path, history_path)
        try:
            with JoinClient(socket_path=socket_path, timeout=60.0) as c:
                _register(c)
                c.query("R", "S", eps=EPS)
                c.query("R", "S", eps=0.016)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
            _assert_history_is_whole(history_path, expected_reports=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)


# ----------------------------------------------------------------------
# cross-process span merge through the resident server
# ----------------------------------------------------------------------
@pytest.mark.cluster
@pytest.mark.serving
class TestClusterSpanMerge:
    def test_cluster_served_trace_is_one_valid_tree(self):
        """A traced query on the cluster backend returns one coherent
        span tree: daemon-side task spans merge under the server-side
        job/stage spans with no orphans."""
        handle = start_in_thread(
            ServerConfig(backend="cluster", executor_workers=2)
        )
        try:
            with JoinClient(
                socket_path=handle.socket_path, timeout=110.0
            ) as c:
                _register(c)
                got = c.query(
                    "R", "S", eps=EPS, trace=True, return_spans=True,
                    reuse_results=False,
                )
        finally:
            handle.stop()
        assert got["ok"] and got["results"] > 0
        spans = [Span.from_dict(row) for row in got["trace_spans"]]
        assert len(spans) == got["spans"]
        validate_span_tree(spans)  # unique ids, no orphans, one root
        cats = {s.cat for s in spans}
        assert "job" in cats and "stage" in cats
        task_workers = {
            s.worker for s in spans if s.cat == "task" and s.worker is not None
        }
        assert len(task_workers) >= 2, (
            "cluster task spans should come from multiple daemons"
        )
        # and the cluster answer matches the serial one-shot bit for bit
        r = load_dataset("R1", base_n=BASE_N)
        s = load_dataset("S1", base_n=BASE_N)
        oneshot = distance_join(r, s, JoinConfig(eps=EPS))
        assert np.array_equal(
            np.asarray(got["pairs"]),
            np.column_stack((oneshot.r_ids, oneshot.s_ids)),
        )


# ----------------------------------------------------------------------
# perfsmoke: enabled observability stays under 2%
# ----------------------------------------------------------------------
def _timed_join(r, s) -> float:
    started = time.perf_counter()
    distance_join(r, s, JoinConfig(eps=0.01))
    return time.perf_counter() - started


@pytest.mark.perfsmoke
@pytest.mark.timeout(120)
def test_observability_overhead_under_two_percent(tmp_path):
    """Per-query observability cost (history append + SLO observe) < 2%.

    Same idiom as the telemetry overhead guard: microbenchmark the
    per-query obs calls (whose cost scales with the report size, not the
    data size) and compare against the measured wall of a bench-sized
    join, instead of a noisy full A/B.
    """
    import timeit

    r = load_dataset("R1", base_n=10_000)
    s = load_dataset("S1", base_n=10_000)
    query_wall = min(
        _timed_join(r, s) for _ in range(2)
    )

    # a real report from a traced run, the payload history serialises
    telemetry = Telemetry.create()
    distance_join(r, s, JoinConfig(eps=0.01, telemetry=telemetry))
    report = telemetry.report().to_json()

    history = RunHistory(str(tmp_path / "bench.jsonl"))
    n = 200
    append_cost = timeit.timeit(
        lambda: history.append_report(report), number=n
    ) / n
    history.close()

    dog = SLOWatchdog(SLOConfig(p95_seconds=30.0))
    observe_cost = timeit.timeit(
        lambda: dog.observe(0.01), number=5_000
    ) / 5_000

    per_query = append_cost + observe_cost
    assert per_query < 0.02 * query_wall, (
        f"obs would cost {per_query * 1e3:.3f}ms of a "
        f"{query_wall * 1e3:.1f}ms query ({per_query / query_wall:.2%})"
    )
