"""Unit tests for replication-area classification (Fig. 9)."""

import pytest

from repro.geometry.mbr import MBR
from repro.grid.areas import AreaKind, classify_point
from repro.grid.grid import Grid


class TestInterior:
    def test_cell_center_is_no_replication(self, grid4x4):
        info = classify_point(grid4x4, 3.75, 3.75)  # center of cell (1,1)
        assert info.kind is AreaKind.NO_REPLICATION
        assert (info.cx, info.cy) == (1, 1)
        assert info.supplementary_corners == ()

    def test_near_outer_boundary_is_no_replication(self, grid4x4):
        # within eps of the grid's own boundary: no neighbour exists
        info = classify_point(grid4x4, 0.2, 1.3)
        assert info.kind is AreaKind.NO_REPLICATION


class TestPlain:
    def test_near_east(self, grid4x4):
        info = classify_point(grid4x4, 2.4, 3.75)  # cell (0,1), near x=2.5
        assert info.kind is AreaKind.PLAIN
        assert (info.near_x, info.near_y) == (1, 0)

    def test_near_west(self, grid4x4):
        info = classify_point(grid4x4, 2.6, 3.75)  # cell (1,1), near x=2.5
        assert (info.near_x, info.near_y) == (-1, 0)

    def test_near_north(self, grid4x4):
        info = classify_point(grid4x4, 3.75, 4.9)
        assert (info.near_x, info.near_y) == (0, 1)

    def test_near_south(self, grid4x4):
        info = classify_point(grid4x4, 3.75, 5.1)
        assert (info.near_x, info.near_y) == (0, -1)

    def test_supplementary_corners_are_border_ends(self, grid4x4):
        # near the east border of cell (1,1): corners (2,1) and (2,2)
        info = classify_point(grid4x4, 4.9, 3.8)
        assert set(info.supplementary_corners) == {(2, 1), (2, 2)}

    def test_supplementary_corners_nearest_first(self, grid4x4):
        info = classify_point(grid4x4, 4.9, 3.9)  # closer to corner (2,2) at y=5
        assert info.supplementary_corners[0] == (2, 2)

    def test_boundary_corner_filtered(self, grid4x4):
        # east border of cell (0,0), lower end corner (1,0) is on the
        # grid boundary -> only (1,1) remains
        info = classify_point(grid4x4, 2.4, 0.3)
        assert info.kind is AreaKind.PLAIN
        assert info.supplementary_corners == ((1, 1),)


class TestMergedDuplicateProne:
    def test_square_zone_detected(self, grid4x4):
        # cell (0,0), near east (x=2.5) and north (y=2.5): corner (1,1)
        info = classify_point(grid4x4, 2.2, 2.2)
        assert info.kind is AreaKind.MERGED_DUPLICATE_PRONE
        assert info.corner == (1, 1)

    def test_all_four_orientations(self, grid4x4):
        # around corner (2,2) at coords (5,5)
        cases = {
            (4.8, 4.8): (1, 1),  # bl cell of the quartet
            (5.2, 4.8): (2, 1),  # br
            (4.8, 5.2): (1, 2),  # tl
            (5.2, 5.2): (2, 2),  # tr
        }
        for (x, y), cell in cases.items():
            info = classify_point(grid4x4, x, y)
            assert info.kind is AreaKind.MERGED_DUPLICATE_PRONE
            assert info.corner == (2, 2)
            assert (info.cx, info.cy) == cell

    def test_supplementary_corners_adjacent_to_own(self, grid4x4):
        info = classify_point(grid4x4, 4.8, 4.8)  # corner (2,2) from bl
        # other end of E border: (2,1); other end of N border: (1,2)
        assert set(info.supplementary_corners) == {(2, 1), (1, 2)}

    def test_boundary_adjacent_corners_filtered(self, grid4x4):
        info = classify_point(grid4x4, 2.2, 2.3)  # corner (1,1) from cell (0,0)
        # candidates (1,0) and (0,1) are boundary corners
        assert info.corner == (1, 1)
        assert info.supplementary_corners == ()

    def test_exact_eps_boundary_included(self, grid2x2):
        # distance to border exactly eps counts as near (<=)
        info = classify_point(grid2x2, 1.5, 1.5)  # 1.0 from x=2.5 and y=2.5
        assert info.kind is AreaKind.MERGED_DUPLICATE_PRONE


class TestDegenerateGrids:
    def test_single_cell_grid(self):
        g = Grid(MBR(0, 0, 2, 2), eps=1.0)
        assert (g.nx, g.ny) == (1, 1)
        info = classify_point(g, 1.9, 0.1)
        assert info.kind is AreaKind.NO_REPLICATION

    def test_single_row_never_merged(self):
        g = Grid(MBR(0, 0, 10, 2.4), eps=1.0)
        assert g.ny == 1
        for x in [2.4, 2.6, 4.9, 5.1]:
            info = classify_point(g, x, 1.2)
            assert info.kind in (AreaKind.PLAIN, AreaKind.NO_REPLICATION)
            assert info.near_y == 0
            assert info.supplementary_corners == ()


def test_classification_is_exhaustive(grid4x4):
    """Every point gets exactly one area kind without errors."""
    step = 0.37
    x = 0.05
    while x < 10:
        y = 0.05
        while y < 10:
            info = classify_point(grid4x4, x, y)
            assert info.kind in AreaKind
            if info.kind is AreaKind.MERGED_DUPLICATE_PRONE:
                assert grid4x4.is_interior_corner(*info.corner)
                assert info.near_x != 0 and info.near_y != 0
            y += step
        x += step


def test_merged_zone_matches_mindist_definition(grid4x4):
    """A point is in the merged square iff it is within eps of two existing
    neighbour cells across perpendicular borders."""
    import itertools

    eps = grid4x4.eps
    for x, y in itertools.product([i * 0.31 + 0.02 for i in range(32)], repeat=2):
        info = classify_point(grid4x4, x, y)
        cx, cy = grid4x4.cell_index(x, y)
        near_two = False
        for dx, dy in [(1, 1), (1, -1), (-1, 1), (-1, -1)]:
            if not grid4x4.in_bounds(cx + dx, cy + dy):
                continue
            mx = grid4x4.cell_mbr(cx + dx, cy).mindist_point(x, y) <= eps
            my = grid4x4.cell_mbr(cx, cy + dy).mindist_point(x, y) <= eps
            if mx and my:
                near_two = True
        assert (info.kind is AreaKind.MERGED_DUPLICATE_PRONE) == near_two, (x, y)
