"""Tests for the analytical cost model (Sect. 8 future work)."""

import pytest

from repro.core.cost_model import (
    AnalyticalCostModel,
    predict_join,
    recommend_method,
)
from repro.data.generators import gaussian_clusters, uniform
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.grid.statistics import GridStatistics
from repro.joins.distance_join import JoinConfig, distance_join

EPS = 0.012


@pytest.fixture(scope="module")
def skewed():
    r = gaussian_clusters(12_000, seed=101, name="S1")
    s = gaussian_clusters(12_000, seed=202, name="S2")
    return r, s


@pytest.fixture(scope="module")
def measured(skewed):
    r, s = skewed
    out = {}
    for method in ("lpib", "uni_r", "uni_s", "eps_grid"):
        cfg = JoinConfig(eps=EPS, method=method, collect_pairs=False)
        out[method] = distance_join(r, s, cfg).metrics
    return out


class TestPredictions:
    @pytest.mark.parametrize("method", ["uni_r", "uni_s", "eps_grid"])
    def test_universal_replication_within_20_percent(self, skewed, measured, method):
        r, s = skewed
        pred = predict_join(r, s, EPS, method)
        actual = measured[method].replicated_total
        assert 0.8 * actual < pred.replicated_total < 1.2 * actual

    def test_adaptive_replication_same_order(self, skewed, measured):
        r, s = skewed
        pred = predict_join(r, s, EPS, "lpib")
        actual = measured["lpib"].replicated_total
        assert 0.3 * actual < pred.replicated_total < 3.0 * actual

    def test_result_estimate_same_order(self, skewed, measured):
        r, s = skewed
        pred = predict_join(r, s, EPS, "lpib")
        actual = measured["lpib"].results
        assert 0.25 * actual < pred.results < 4.0 * actual

    def test_time_prediction_tracks_measurement(self, skewed, measured):
        r, s = skewed
        for method in ("lpib", "uni_r"):
            pred = predict_join(r, s, EPS, method)
            actual = measured[method].exec_time_model
            assert 0.5 * actual < pred.exec_time < 2.0 * actual, method

    def test_shuffle_bytes_consistent_with_replication(self, skewed):
        r, s = skewed
        pred = predict_join(r, s, EPS, "uni_r")
        expected = (len(r) + pred.replicated_r + len(s)) * 32  # 8 key + 24 tuple
        assert pred.shuffle_bytes == pytest.approx(expected)

    def test_prediction_orders_methods_like_measurement(self, skewed, measured):
        """The model must rank adaptive ahead of the PBSM baselines."""
        r, s = skewed
        preds = {m: predict_join(r, s, EPS, m) for m in measured}
        assert preds["lpib"].exec_time == min(p.exec_time for p in preds.values())
        assert preds["lpib"].replicated_total < 0.5 * min(
            preds["uni_r"].replicated_total, preds["uni_s"].replicated_total
        )


class TestRecommendation:
    def test_recommends_adaptive_on_skewed_data(self, skewed):
        r, s = skewed
        best, predictions = recommend_method(r, s, EPS)
        assert best in ("lpib", "diff")
        assert set(predictions) == {"lpib", "diff", "uni_r", "uni_s", "eps_grid"}

    def test_restricting_candidates(self, skewed):
        r, s = skewed
        best, predictions = recommend_method(r, s, EPS, methods=("uni_r", "uni_s"))
        assert best in ("uni_r", "uni_s")
        assert set(predictions) == {"uni_r", "uni_s"}

    def test_describe(self, skewed):
        r, s = skewed
        pred = predict_join(r, s, EPS, "lpib")
        assert "lpib" in pred.describe()
        assert pred.exec_time == pred.construction_time + pred.join_time


class TestModelMechanics:
    def test_invalid_sample_rate(self):
        grid = Grid(uniform(10, seed=1).mbr(), 0.05)
        stats = GridStatistics(grid)
        with pytest.raises(ValueError):
            AnalyticalCostModel(grid, stats, 0.0, n_r=10, n_s=10)

    def test_full_statistics_exact_universal_replication(self):
        """With phi = 1 the universal replication prediction is exact."""
        r = uniform(2000, seed=3, name="u1")
        s = uniform(2000, seed=4, name="u2")
        grid = Grid(r.mbr().union(s.mbr()), 0.05)
        stats = GridStatistics(grid)
        stats.add_points(r.xs, r.ys, Side.R)
        stats.add_points(s.xs, s.ys, Side.S)
        model = AnalyticalCostModel(grid, stats, 1.0, n_r=len(r), n_s=len(s))
        pred = model.predict("uni_r")
        cfg = JoinConfig(
            eps=0.05, method="uni_r", sample_rate=1.0, collect_pairs=False,
            mbr=grid.mbr,
        )
        actual = distance_join(r, s, cfg).metrics
        assert pred.replicated_total == pytest.approx(actual.replicated_total)

    def test_sample_join_estimator_used_when_available(self):
        grid = Grid(uniform(10, seed=1).mbr(), 0.05)
        stats = GridStatistics(grid)
        model = AnalyticalCostModel(
            grid, stats, 0.5, n_r=100, n_s=100,
            sample_results=25, sample_results_rate=0.5,
        )
        assert model.predicted_results() == pytest.approx(25 / 0.25)
