"""Import-DAG enforcement for the staged pipeline layering.

The refactor's layering contract, checked by walking every module's AST
(no imports are executed):

- ``repro.engine`` is the bottom layer: it must never import the join
  drivers (``repro.joins``), the CLI (``repro.cli``) or the benchmark
  helpers (``repro.bench``).  Kernels reach the executor through the
  :mod:`repro.engine.kernels` registry, not the other way around.
- ``repro.joins`` (the stages and drivers) must never import the CLI or
  the benchmark layer.
- ``repro.serving`` (the resident join server) composes the drivers and
  the engine; only the CLI sits above it, and nothing below it may
  import it.
- ``repro.planner`` (the query-plan layer) sits above ``repro.core``/
  ``repro.engine``/``repro.joins`` and below ``repro.serving`` and the
  CLI: the planner prices and chooses plans, serving and the CLI consume
  them, and nothing the planner prices may import the planner back.
  (The physical-plan *dataclasses* live in ``repro.joins.plan`` so the
  drivers can build plans without an upward import; ``repro.planner``
  re-exports them.)
"""

import ast
import os

import pytest

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)

#: layer prefix -> module prefixes it must never depend on
FORBIDDEN = {
    "repro.engine": ("repro.joins", "repro.cli", "repro.bench",
                     "repro.serving", "repro.planner", "repro.obs"),
    "repro.joins": ("repro.cli", "repro.bench", "repro.serving",
                    "repro.planner", "repro.obs"),
    # the serving layer sits on top of the drivers but below the CLI:
    # it composes joins + engine, and nothing below it may know it exists
    "repro.serving": ("repro.cli", "repro.bench"),
    # the planner prices what core/engine/joins build; it sits above all
    # three and below serving/cli, so nothing it prices imports it back
    "repro.planner": ("repro.cli", "repro.bench", "repro.serving",
                      "repro.obs"),
    "repro.core": ("repro.cli", "repro.bench", "repro.serving",
                   "repro.planner", "repro.obs"),
    # telemetry is the engine's bottom layer: everything above publishes
    # into it, so it must not import any engine sibling (or anything
    # higher) -- only the stdlib and numpy-free leaves
    "repro.engine.telemetry": (
        "repro.engine.blockstore",
        "repro.engine.cluster",
        "repro.engine.executor",
        "repro.engine.faults",
        "repro.engine.kernels",
        "repro.engine.lpt",
        "repro.engine.metrics",
        "repro.engine.partitioner",
        "repro.engine.rdd",
        "repro.engine.shuffle",
        "repro.joins",
        "repro.cli",
        "repro.bench",
        "repro.obs",
    ),
    # the continuous-observability layer sits directly above
    # engine.telemetry and below serving/cli: it may import telemetry
    # (and nothing else from repro), the pipeline reaches it duck-typed
    # through ExecutionSettings.history, and repro top takes an opaque
    # poll() callable instead of importing the serving client
    "repro.obs": (
        "repro.joins",
        "repro.cli",
        "repro.bench",
        "repro.serving",
        "repro.planner",
        "repro.core",
        "repro.engine.blockstore",
        "repro.engine.cluster",
        "repro.engine.executor",
        "repro.engine.faults",
        "repro.engine.kernels",
        "repro.engine.lpt",
        "repro.engine.metrics",
        "repro.engine.partitioner",
        "repro.engine.rdd",
        "repro.engine.shuffle",
    ),
}


def iter_modules():
    pkg_root = os.path.join(SRC_ROOT, "repro")
    for dirpath, _dirnames, filenames in os.walk(pkg_root):
        for fname in sorted(filenames):
            if not fname.endswith(".py"):
                continue
            path = os.path.join(dirpath, fname)
            rel = os.path.relpath(path, SRC_ROOT)
            module = rel[: -len(".py")].replace(os.sep, ".")
            if module.endswith(".__init__"):
                module = module[: -len(".__init__")]
            yield module, path


def imported_modules(module, path):
    """Absolute names of every module imported by ``module``."""
    with open(path) as f:
        tree = ast.parse(f.read(), filename=path)
    package_parts = module.split(".")[:-1]
    out = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            out.update(alias.name for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # resolve "from ..x import y" relative imports
                base = package_parts[: len(package_parts) - node.level + 1]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            if prefix:
                out.add(prefix)
                # "from pkg import name" may bind the submodule pkg.name
                out.update(f"{prefix}.{alias.name}" for alias in node.names)
    return out


MODULES = sorted(iter_modules())


def in_layer(module, layer):
    return module == layer or module.startswith(layer + ".")


@pytest.mark.parametrize("layer", sorted(FORBIDDEN))
def test_layer_never_imports_upward(layer):
    forbidden = FORBIDDEN[layer]
    violations = []
    for module, path in MODULES:
        if not in_layer(module, layer):
            continue
        for imported in imported_modules(module, path):
            for banned in forbidden:
                if in_layer(imported, banned):
                    violations.append(f"{module} imports {imported}")
    assert not violations, "\n".join(sorted(violations))


def test_layer_check_sees_the_tree():
    """Guard against the walker silently scanning nothing."""
    names = {m for m, _ in MODULES}
    assert "repro.engine.executor" in names
    assert "repro.joins.pipeline" in names
    assert "repro.cli" in names
    assert len(names) > 40


def test_stages_live_below_the_cli():
    """The CLI composes drivers; drivers and stages never see the CLI."""
    pipeline = dict(MODULES)["repro.joins.pipeline"]
    imports = imported_modules("repro.joins.pipeline", pipeline)
    assert not any(in_layer(i, "repro.cli") for i in imports)
    assert any(in_layer(i, "repro.engine") for i in imports)


def test_planner_sits_between_joins_and_serving():
    """The planner prices joins/core below it; serving consumes it above."""
    modules = dict(MODULES)
    names = set(modules)
    assert "repro.planner" in names
    assert "repro.planner.planner" in names
    assert "repro.planner.logical" in names
    assert "repro.planner.physical" in names
    assert "repro.joins.plan" in names
    # the planner builds on core + joins (downward imports exist) ...
    planner_imports = set()
    for module, path in MODULES:
        if in_layer(module, "repro.planner"):
            planner_imports |= imported_modules(module, path)
    assert any(in_layer(i, "repro.core") for i in planner_imports)
    assert any(in_layer(i, "repro.joins") for i in planner_imports)
    # ... and serving + cli consume the planner from above
    for consumer in ("repro.serving.server", "repro.cli"):
        imports = imported_modules(consumer, modules[consumer])
        assert any(in_layer(i, "repro.planner") for i in imports), (
            f"{consumer} should plan through repro.planner"
        )


def test_drivers_build_plans_without_importing_the_planner():
    """Drivers build physical plans via repro.joins.plan, never upward."""
    modules = dict(MODULES)
    for driver in ("repro.joins.distance_join", "repro.joins.object_join",
                   "repro.joins.generalized_join", "repro.joins.spark_style"):
        imports = imported_modules(driver, modules[driver])
        assert any(in_layer(i, "repro.joins.plan") for i in imports), (
            f"{driver} should build its stages from a physical plan"
        )
        assert not any(in_layer(i, "repro.planner") for i in imports)


def test_obs_sits_between_telemetry_and_serving():
    """repro.obs builds on telemetry only; serving and the CLI consume it."""
    modules = dict(MODULES)
    names = set(modules)
    for expected in ("repro.obs", "repro.obs.history", "repro.obs.exporter",
                     "repro.obs.slo", "repro.obs.top"):
        assert expected in names
    # obs imports nothing from repro except engine.telemetry
    for module, path in MODULES:
        if not in_layer(module, "repro.obs"):
            continue
        for imported in imported_modules(module, path):
            if imported.startswith("repro."):
                assert (
                    in_layer(imported, "repro.engine.telemetry")
                    or in_layer(imported, "repro.obs")
                ), f"{module} imports {imported}"
    # serving and the CLI compose it from above
    for consumer in ("repro.serving.server", "repro.cli"):
        imports = imported_modules(consumer, modules[consumer])
        assert any(in_layer(i, "repro.obs") for i in imports), (
            f"{consumer} should compose repro.obs"
        )


def test_telemetry_sits_below_executor_and_pipeline():
    """Executor and pipeline publish into telemetry, never the reverse."""
    modules = dict(MODULES)
    for consumer in ("repro.engine.executor", "repro.joins.pipeline"):
        imports = imported_modules(consumer, modules[consumer])
        assert any(in_layer(i, "repro.engine.telemetry") for i in imports), (
            f"{consumer} should publish into repro.engine.telemetry"
        )
    names = {m for m, _ in MODULES}
    assert "repro.engine.telemetry.spans" in names
    assert "repro.engine.telemetry.registry" in names
