"""Cluster backend tests: real multi-process daemons over localhost
sockets, driven through the full join pipeline.

The guarantees under test mirror the simulated backends' chaos matrix,
but here the failures are *real*: daemons SIGKILL themselves mid-join,
block servers die mid-fetch, heartbeats go silent -- and the answer must
still be bit-identical to a fault-free serial run, with the recovery
visible in the metrics (``blocks_refetched``, ``cells_salvaged``,
``cluster_daemons_lost``, ``cluster_daemon_rejoins``).

Every test here carries the ``cluster`` marker, which arms the per-test
SIGALRM deadline from ``conftest.py`` -- a wedged daemon or deadlocked
socket fails fast instead of hanging the suite.
"""

import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro.engine.cluster_backend.coordinator as coord_mod
from repro.data.generators import gaussian_clusters
from repro.engine import hygiene
from repro.engine.cluster_backend import (
    ClusterConfig,
    ClusterService,
    ClusterUnavailable,
)
from repro.engine.executor import RetryPolicy, execute_plan
from repro.engine.faults import FaultPlan
from repro.engine.telemetry import Telemetry, validate_span_tree
from repro.joins.distance_join import JoinConfig, distance_join
from repro.verify.invariants import validate_join_result

from tests.test_fault_tolerance import assert_same_results, make_plan

pytestmark = pytest.mark.cluster

EPS = 0.02


def cluster_inputs():
    return (
        gaussian_clusters(420, seed=51, name="R"),
        gaussian_clusters(380, seed=52, name="S"),
    )


def cluster_join(**overrides):
    """A small distance join on the real cluster backend."""
    r, s = cluster_inputs()
    cfg = JoinConfig(
        eps=EPS,
        method="lpib",
        num_workers=3,
        local_kernel="plane_sweep",
        execution_backend="cluster",
        executor_workers=2,
        **overrides,
    )
    return r, s, distance_join(r, s, cfg)


_REFERENCE = {}


def reference_result():
    """Fault-free serial run, computed once per module."""
    if "ref" not in _REFERENCE:
        r, s = cluster_inputs()
        cfg = JoinConfig(eps=EPS, method="lpib", num_workers=3,
                         local_kernel="plane_sweep")
        _REFERENCE["ref"] = distance_join(r, s, cfg)
    return _REFERENCE["ref"]


def assert_bit_identical(res, tag=""):
    reference = reference_result()
    assert len(reference) > 0
    assert np.array_equal(res.r_ids, reference.r_ids), tag
    assert np.array_equal(res.s_ids, reference.s_ids), tag


def dead_pid() -> int:
    """A pid that provably names no live process."""
    proc = subprocess.Popen([sys.executable, "-c", "pass"])
    proc.wait()
    assert not hygiene.pid_alive(proc.pid)
    return proc.pid


# ----------------------------------------------------------------------
# fault-free operation
# ----------------------------------------------------------------------
class TestClusterBasics:
    def test_fault_free_bit_identical(self):
        r, s, res = cluster_join(cluster_daemons=2)
        assert_bit_identical(res)
        check = validate_join_result(res, r, s, EPS)
        assert check.ok, check.issues
        m = res.metrics
        assert m.extra["cluster_daemons_spawned"] >= 2
        assert "cluster_daemons_lost" not in m.extra
        assert m.blocks_refetched == 0  # no recovery on a clean run

    def test_fused_and_discrete_paths_agree(self):
        fused = cluster_join(cluster_daemons=2, fused=True)[2]
        discrete = cluster_join(cluster_daemons=2, fused=False)[2]
        assert_bit_identical(fused, "fused")
        assert_bit_identical(discrete, "discrete")

    def test_cluster_config_coerce(self):
        cfg = ClusterConfig(daemons=3, heartbeat_timeout=1.0)
        assert ClusterConfig.coerce(cfg) is cfg
        assert ClusterConfig.coerce(None) == ClusterConfig()
        mapped = ClusterConfig.coerce(
            {"daemons": 2, "fetch_timeout": 0.5}
        )
        assert mapped.daemons == 2
        assert mapped.fetch_timeout == 0.5
        # unset keys keep their defaults
        assert mapped.heartbeat_interval == ClusterConfig().heartbeat_interval

    def test_executor_reports_cluster_tier(self):
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="cluster", max_workers=2,
        )
        assert_same_results(ref, report)
        assert report.backend_used == "cluster"
        assert report.os_workers == 2
        assert report.daemons_spawned >= 2
        assert not report.degraded


# ----------------------------------------------------------------------
# chaos: real SIGKILLs, dead block servers, silent heartbeats
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestClusterChaos:
    def test_kill_mid_local_join_salvages_and_refetches(self, tmp_path):
        """A daemon SIGKILLs itself mid-join; its blocks die with it.
        The retry must refetch from the coordinator's authoritative copy
        and resume from the disk checkpoints the dead attempt left."""
        r, s, res = cluster_join(
            cluster_daemons=2, faults="kill:p=1:times=1", max_retries=3,
            spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
        )
        assert_bit_identical(res, "kill")
        check = validate_join_result(res, r, s, EPS)
        assert check.ok, check.issues
        m = res.metrics
        assert m.fault_events > 0, "the injected kill never fired"
        assert m.extra["cluster_daemons_lost"] >= 1
        assert m.blocks_refetched > 0  # dead daemon's blocks re-pulled
        assert m.cells_salvaged > 0  # checkpoints survived the SIGKILL
        assert m.task_retries > 0 or m.speculative_wins > 0
        assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"

    def test_serve_kill_mid_fetch(self):
        """The daemon holding a task's blocks is SIGKILLed while serving
        the fetch; the fetcher falls back to the coordinator's copy."""
        r, s, res = cluster_join(
            cluster_daemons=2, faults="serve:worker=2", max_retries=3,
        )
        assert_bit_identical(res, "serve")
        check = validate_join_result(res, r, s, EPS)
        assert check.ok, check.issues
        m = res.metrics
        assert m.fault_events > 0, "the injected serve-kill never fired"
        assert m.extra["cluster_daemons_lost"] >= 1
        assert m.blocks_refetched > 0

    def test_heartbeat_delay_false_positive_rejoin(self):
        """A healthy-but-silent daemon is declared lost (its work is
        requeued), then its delayed beat arrives and it rejoins.  The
        straggler delay keeps first attempts running long enough for the
        timeout check to actually fire."""
        r, s, res = cluster_join(
            cluster_daemons=2,
            faults="straggler:delay=0.8,heartbeat:worker=0:delay=0.5",
            max_retries=3,
            heartbeat_interval=0.05,
            heartbeat_timeout=0.2,
        )
        assert_bit_identical(res, "heartbeat")
        m = res.metrics
        assert m.extra["cluster_daemons_lost"] >= 1
        assert m.extra["cluster_daemon_rejoins"] >= 1

    def test_external_sigkill_by_pid(self, monkeypatch):
        """SIGKILL a daemon from *outside* the fault plan, mid-job: the
        coordinator must detect the EOF, fail its flights, respawn, and
        still deliver the bit-identical answer."""
        captured = {}
        orig_start = ClusterService.start

        def capturing_start(self, n):
            orig_start(self, n)
            captured["service"] = self

        monkeypatch.setattr(ClusterService, "start", capturing_start)

        def killer():
            deadline = time.monotonic() + 10.0
            while "service" not in captured and time.monotonic() < deadline:
                time.sleep(0.01)
            service = captured.get("service")
            if service is None:  # pragma: no cover - start itself failed
                return
            time.sleep(0.15)  # let the straggling first attempts start
            pid = service.daemon_pid(0)
            if pid is not None:
                os.kill(pid, signal.SIGKILL)

        thread = threading.Thread(target=killer)
        thread.start()
        try:
            r, s, res = cluster_join(
                cluster_daemons=2,
                faults="straggler:delay=0.6:times=1",
                max_retries=3,
            )
        finally:
            thread.join()
        assert_bit_identical(res, "external kill")
        assert res.metrics.extra["cluster_daemons_lost"] >= 1


# ----------------------------------------------------------------------
# membership and degradation
# ----------------------------------------------------------------------
class TestClusterMembership:
    def test_elastic_membership(self):
        """Daemons are real processes that can join and leave."""
        service = ClusterService(ClusterConfig(sweep_on_start=False))
        with service:
            service.start(2)
            assert service.live_daemons() == [0, 1]
            pids = [service.daemon_pid(i) for i in (0, 1)]
            assert all(p and hygiene.pid_alive(p) for p in pids)
            assert len(set(pids)) == 2  # distinct processes

            new_id = service.add_daemon()
            assert new_id == 2
            deadline = time.monotonic() + 10.0
            while (
                len(service.live_daemons()) < 3
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
            assert service.live_daemons() == [0, 1, 2]

            service.remove_daemon(1)
            assert 1 not in service.live_daemons()
        # close() tears every process down
        deadline = time.monotonic() + 10.0
        while (
            any(hygiene.pid_alive(p) for p in pids)
            and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        assert not any(hygiene.pid_alive(p) for p in pids)

    def test_scales_work_across_added_daemon(self):
        """Work submitted after an add_daemon lands on the new member:
        run a join with 1 initial daemon but 3 simulated workers and let
        elasticity come from respawn-free dispatch."""
        r, s, res = cluster_join(cluster_daemons=1)
        assert_bit_identical(res, "single daemon")
        assert res.metrics.extra["cluster_daemons_spawned"] >= 1

    def test_degrades_to_processes_when_cluster_unavailable(
        self, monkeypatch
    ):
        def failing_start(self, n):
            raise ClusterUnavailable("injected: no daemons for you")

        monkeypatch.setattr(ClusterService, "start", failing_start)
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="cluster", max_workers=2,
            retry=RetryPolicy(max_retries=2, backoff_base=0.0),
        )
        assert_same_results(ref, report)
        assert report.degraded[0] == "processes"
        assert report.backend_used in ("processes", "threads", "serial")

    def test_degradation_chain_reaches_serial(self, monkeypatch):
        """cluster -> processes -> threads -> serial: with a zero retry
        budget and a kill on attempts 0-2, only the serial tier's
        attempt 3 survives."""
        plan = make_plan()
        ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
        report = execute_plan(
            plan, "grid_hash", EPS, backend="cluster", max_workers=2,
            faults=FaultPlan.parse("kill:p=1:times=3"),
            retry=RetryPolicy(max_retries=0, backoff_base=0.0),
        )
        assert_same_results(ref, report)
        assert report.degraded == ["processes", "threads", "serial"]
        assert report.backend_used == "serial"


# ----------------------------------------------------------------------
# telemetry: spans merged across process boundaries
# ----------------------------------------------------------------------
class TestClusterTelemetry:
    def test_traced_run_has_valid_merged_span_tree(self):
        telemetry = Telemetry.create()
        r, s = cluster_inputs()
        cfg = JoinConfig(
            eps=EPS, method="lpib", num_workers=3,
            local_kernel="plane_sweep", execution_backend="cluster",
            executor_workers=2, cluster_daemons=2, telemetry=telemetry,
        )
        res = distance_join(r, s, cfg)
        assert_bit_identical(res, "traced")
        spans = telemetry.tracer.spans()
        validate_span_tree(spans)  # single root, no orphans, nesting ok
        remote = [s for s in spans if s.attrs.get("daemon") is not None]
        assert remote, "no daemon-side spans were merged back"
        # every remote span hangs off a coordinator-side scheduler span
        by_id = {s.span_id: s for s in spans}
        for span in remote:
            assert span.parent_id in by_id

    def test_chaos_run_spans_stay_consistent(self, tmp_path):
        telemetry = Telemetry.create()
        r, s = cluster_inputs()
        cfg = JoinConfig(
            eps=EPS, method="lpib", num_workers=3,
            local_kernel="plane_sweep", execution_backend="cluster",
            executor_workers=2, cluster_daemons=2, telemetry=telemetry,
            faults="kill:p=1:times=1", max_retries=3,
            spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
        )
        res = distance_join(r, s, cfg)
        assert_bit_identical(res, "traced chaos")
        validate_span_tree(telemetry.tracer.spans())


# ----------------------------------------------------------------------
# startup hygiene: reclaiming what a crashed run left behind
# ----------------------------------------------------------------------
class TestStartupHygiene:
    def test_sweep_removes_only_provably_dead_resources(self, tmp_path):
        stale_pid = dead_pid()
        tmp_root = tmp_path / "tmp"
        shm_dir = tmp_path / "shm"
        tmp_root.mkdir()
        shm_dir.mkdir()

        # stale spill dir (dead owner) -> removed
        stale_dir = tmp_root / "repro-spill-stale"
        stale_dir.mkdir()
        (stale_dir / "block_R_0000_0001.npz").write_bytes(b"x")
        hygiene.write_owner_marker(str(stale_dir), pid=stale_pid)
        # live-owner dir -> kept
        live_dir = tmp_root / "repro-ckpt-live"
        live_dir.mkdir()
        hygiene.write_owner_marker(str(live_dir))
        # unmarked dir -> kept (cannot attribute an owner)
        unmarked = tmp_root / "repro-spill-unmarked"
        unmarked.mkdir()
        # unrelated dir -> never considered
        other = tmp_root / "someone-elses-data"
        other.mkdir()

        # orphaned shm segment (dead owner embedded in name) -> removed
        stale_seg = shm_dir / f"repro_{stale_pid}_0_abc123"
        stale_seg.write_bytes(b"y")
        # live segment -> kept
        live_seg = shm_dir / f"repro_{os.getpid()}_1_def456"
        live_seg.write_bytes(b"z")
        # foreign segment -> never considered
        foreign_seg = shm_dir / "psm_whatever"
        foreign_seg.write_bytes(b"w")

        report = hygiene.sweep_stale_resources(
            tmp_root=str(tmp_root), shm_dir=str(shm_dir)
        )
        assert report["dirs_removed"] == [str(stale_dir)]
        assert report["segments_removed"] == [stale_seg.name]
        assert not stale_dir.exists()
        assert not stale_seg.exists()
        assert live_dir.exists() and unmarked.exists() and other.exists()
        assert live_seg.exists() and foreign_seg.exists()
        assert str(live_dir) in report["skipped"]
        assert str(unmarked) in report["skipped"]

    def test_sweep_is_idempotent_and_safe_on_empty(self, tmp_path):
        report = hygiene.sweep_stale_resources(
            tmp_root=str(tmp_path), shm_dir=str(tmp_path / "missing")
        )
        assert report == {
            "dirs_removed": [], "segments_removed": [],
            "sockets_removed": [], "skipped": [],
        }

    def test_shm_owner_parsing(self):
        assert hygiene.shm_segment_owner("repro_1234_0_ab") == 1234
        assert hygiene.shm_segment_owner("repro_bogus") is None
        assert hygiene.shm_segment_owner("psm_1234") is None
        assert hygiene.pid_alive(os.getpid())
        assert not hygiene.pid_alive(0)
        assert not hygiene.pid_alive(dead_pid())

    def test_cluster_start_runs_the_sweep(self, monkeypatch):
        """A dirty start is healed before any daemon spawns."""
        calls = []

        def recording_sweep(*args, **kwargs):
            calls.append(1)
            return {"dirs_removed": [], "segments_removed": [],
                    "skipped": []}

        monkeypatch.setattr(
            coord_mod, "sweep_stale_resources", recording_sweep
        )
        with ClusterService(ClusterConfig(sweep_on_start=True)) as service:
            service.start(1)
        assert calls == [1]

        calls.clear()
        with ClusterService(ClusterConfig(sweep_on_start=False)) as service:
            service.start(1)
        assert calls == []

    def test_spill_dirs_are_owner_tagged(self, tmp_path):
        """The block store tags the directories it creates, so a future
        sweep can attribute them."""
        from repro.engine.blockstore import BlockId, BlockStore

        target = tmp_path / "spill"
        with BlockStore("disk", spill_dir=str(target)) as store:
            store.put(
                BlockId("R", 0, 0),
                {"cells": np.arange(4, dtype=np.int64)},
                records=4, logical_bytes=128,
            )
            marker = target / hygiene.OWNER_MARKER
            assert marker.exists()
            assert int(marker.read_text()) == os.getpid()
