"""Unit tests for the graph-of-agreements structures (Def. 4.2)."""

import pytest

from repro.agreements.graph import AgreementGraph
from repro.geometry.point import Side
from tests.conftest import make_graph


class TestQuartetSubgraph:
    def test_one_quartet_on_2x2(self, grid2x2):
        graph = make_graph(grid2x2, Side.R)
        assert set(graph.quartets) == {(1, 1)}

    def test_twelve_directed_edges(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        assert len(list(sub.edges())) == 12

    def test_edges_paired_and_typed(self, grid2x2):
        sub = make_graph(grid2x2, Side.S).quartet((1, 1))
        cells = list(sub.cells.values())
        for a in cells:
            for b in cells:
                if a == b:
                    continue
                e_ab, e_ba = sub.edge(a, b), sub.edge(b, a)
                assert e_ab.side is e_ba.side is Side.S
                assert (e_ab.tail, e_ab.head) == (a, b)

    def test_side_neighbors_and_diagonal(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        bl, br = sub.cells["bl"], sub.cells["br"]
        tl, tr = sub.cells["tl"], sub.cells["tr"]
        assert set(sub.side_neighbors(bl)) == {br, tl}
        assert sub.diagonal(bl) == tr
        assert sub.diagonal(tr) == bl

    def test_pair_is_diagonal(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        assert sub.pair_is_diagonal(sub.cells["bl"], sub.cells["tr"])
        assert not sub.pair_is_diagonal(sub.cells["bl"], sub.cells["br"])

    def test_four_triangles(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        tris = list(sub.triangles())
        assert len(tris) == 4
        assert all(len(set(t)) == 3 for t in tris)

    def test_triangles_of_pair(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        bl, br = sub.cells["bl"], sub.cells["br"]
        assert len(list(sub.triangles_of_pair(bl, br))) == 2

    def test_third_vertices(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        thirds = sub.third_vertices(sub.cells["bl"], sub.cells["br"])
        assert set(thirds) == {sub.cells["tl"], sub.cells["tr"]}

    def test_reset_marks(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        edge = next(iter(sub.edges()))
        edge.marked = True
        edge.locked = True
        sub.reset_marks()
        assert not any(e.marked or e.locked for e in sub.edges())

    def test_ref_is_corner_coords(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        assert sub.ref == (2.5, 2.5)


class TestAgreementGraph:
    def test_quartet_count_4x4(self, grid4x4):
        graph = make_graph(grid4x4, Side.R)
        assert len(graph.quartets) == 9

    def test_side_pair_has_copies_in_two_quartets(self, grid4x4):
        graph = make_graph(grid4x4, Side.R)
        a, b = grid4x4.cell_id(1, 1), grid4x4.cell_id(2, 1)
        holders = [
            q for q, sub in graph.quartets.items() if a in sub.pos_of and b in sub.pos_of
        ]
        assert len(holders) == 2
        copies = [graph.quartet(q).edge(a, b) for q in holders]
        assert copies[0] is not copies[1]
        assert copies[0].side == copies[1].side

    def test_pair_type_lookup(self, grid2x2):
        graph = make_graph(grid2x2, Side.S)
        assert graph.pair_type(0, 1) is Side.S

    def test_agreement_counts(self, grid2x2):
        pairs = [frozenset(p[:2]) for p in grid2x2.adjacent_pairs()]
        types = [Side.R, Side.R, Side.S, Side.S, Side.S, Side.S]
        graph = AgreementGraph(grid2x2, dict(zip(pairs, types)))
        counts = graph.agreement_counts()
        assert counts[Side.R] == 2
        assert counts[Side.S] == 4

    def test_num_marked_edges_initially_zero(self, grid4x4):
        assert make_graph(grid4x4, Side.R).num_marked_edges() == 0

    def test_weights_default_zero_without_stats(self, grid2x2):
        sub = make_graph(grid2x2, Side.R).quartet((1, 1))
        assert all(e.weight == 0.0 for e in sub.edges())
