"""Unit tests for spatial objects with extent."""

import math

import numpy as np
import pytest

from repro.data.object_generators import (
    random_boxes,
    random_polygons,
    random_polylines,
)
from repro.geometry.mbr import MBR
from repro.geometry.objects import (
    BoxObject,
    PolygonObject,
    PolylineObject,
    objects_intersect,
)
from repro.geometry.point import Side


def box(pid, x0, y0, x1, y1, side=Side.R):
    return BoxObject(pid, MBR(x0, y0, x1, y1), side)


class TestBoxObject:
    def test_mbr_and_anchor(self):
        b = box(1, 0, 0, 2, 4)
        assert b.mbr() == MBR(0, 0, 2, 4)
        assert b.anchor() == (1, 2)

    def test_radius_is_half_diagonal(self):
        b = box(1, 0, 0, 2, 4)
        assert b.radius() == pytest.approx(math.hypot(1, 2))

    def test_box_box_distance(self):
        a = box(1, 0, 0, 1, 1)
        assert a.distance_to(box(2, 2, 0, 3, 1)) == pytest.approx(1.0)
        assert a.distance_to(box(3, 2, 2, 3, 3)) == pytest.approx(math.sqrt(2))
        assert a.distance_to(box(4, 0.5, 0.5, 2, 2)) == 0.0

    def test_intersects(self):
        a = box(1, 0, 0, 1, 1)
        assert a.intersects(box(2, 1, 1, 2, 2))  # corner touch
        assert not a.intersects(box(3, 1.1, 0, 2, 1))

    def test_contains_point(self):
        assert box(1, 0, 0, 1, 1).contains_point(0.5, 0.5)
        assert not box(1, 0, 0, 1, 1).contains_point(1.5, 0.5)

    def test_serialized_bytes(self):
        assert box(1, 0, 0, 1, 1).serialized_bytes() == 8 + 32


class TestPolygonObject:
    @pytest.fixture
    def square(self):
        return PolygonObject(1, [(0, 0), (2, 0), (2, 2), (0, 2)], Side.R)

    @pytest.fixture
    def triangle(self):
        return PolygonObject(2, [(5, 0), (7, 0), (6, 2)], Side.S)

    def test_validation(self):
        with pytest.raises(ValueError):
            PolygonObject(1, [(0, 0), (1, 1)], Side.R)

    def test_area(self, square, triangle):
        assert square.area() == pytest.approx(4.0)
        assert triangle.area() == pytest.approx(2.0)

    def test_contains_point(self, square):
        assert square.contains_point(1, 1)
        assert square.contains_point(0, 1)  # boundary
        assert not square.contains_point(3, 1)

    def test_distance_disjoint(self, square, triangle):
        assert square.distance_to(triangle) == pytest.approx(3.0)
        assert triangle.distance_to(square) == pytest.approx(3.0)

    def test_distance_zero_when_overlapping(self, square):
        other = PolygonObject(3, [(1, 1), (3, 1), (3, 3), (1, 3)], Side.S)
        assert square.distance_to(other) == 0.0
        assert objects_intersect(square, other)

    def test_containment_detected(self, square):
        inner = PolygonObject(4, [(0.5, 0.5), (1.5, 0.5), (1, 1.5)], Side.S)
        assert square.distance_to(inner) == 0.0
        assert objects_intersect(square, inner)
        assert objects_intersect(inner, square)

    def test_polygon_box_distance(self, square):
        b = box(9, 4, 0, 5, 1, Side.S)
        assert square.distance_to(b) == pytest.approx(2.0)
        assert b.distance_to(square) == pytest.approx(2.0)


class TestPolylineObject:
    def test_validation(self):
        with pytest.raises(ValueError):
            PolylineObject(1, [(0, 0)], Side.R)

    def test_mbr(self):
        line = PolylineObject(1, [(0, 0), (2, 1), (1, 3)], Side.R)
        assert line.mbr() == MBR(0, 0, 2, 3)

    def test_no_interior(self):
        line = PolylineObject(1, [(0, 0), (2, 0)], Side.R)
        assert not line.contains_point(1, 0)  # even on the line: no interior

    def test_distance_to_box(self):
        line = PolylineObject(1, [(0, 2), (4, 2)], Side.R)
        b = box(2, 1, 0, 3, 1, Side.S)
        assert line.distance_to(b) == pytest.approx(1.0)

    def test_crossing_polygon_distance_zero(self):
        line = PolylineObject(1, [(-1, 1), (3, 1)], Side.R)
        poly = PolygonObject(2, [(0, 0), (2, 0), (2, 2), (0, 2)], Side.S)
        assert line.distance_to(poly) == 0.0
        assert objects_intersect(line, poly)

    def test_line_inside_polygon(self):
        line = PolylineObject(1, [(0.5, 0.5), (1.5, 1.5)], Side.R)
        poly = PolygonObject(2, [(0, 0), (2, 0), (2, 2), (0, 2)], Side.S)
        assert line.distance_to(poly) == 0.0


class TestGenerators:
    def test_deterministic(self):
        a = random_boxes(50, Side.R, seed=3)
        b = random_boxes(50, Side.R, seed=3)
        assert all(x.box == y.box for x, y in zip(a, b))

    def test_counts_and_sides(self):
        for gen in (random_boxes, random_polygons, random_polylines):
            objs = gen(40, Side.S, seed=1)
            assert len(objs) == 40
            assert all(o.side is Side.S for o in objs)

    def test_objects_inside_domain(self):
        for gen in (random_boxes, random_polygons, random_polylines):
            for obj in gen(100, Side.R, seed=2):
                m = obj.mbr()
                assert m.xmin >= 0 and m.xmax <= 1
                assert m.ymin >= 0 and m.ymax <= 1

    def test_polygons_are_simple(self):
        """No two non-adjacent edges of a generated ring may cross."""
        from repro.geometry.segment import segments_intersect

        for poly in random_polygons(100, Side.R, seed=4):
            edges = list(poly.edges())
            n = len(edges)
            for i in range(n):
                for j in range(i + 1, n):
                    if j == i + 1 or (i == 0 and j == n - 1):
                        continue  # adjacent edges share a vertex
                    assert not segments_intersect(*edges[i], *edges[j]), (
                        poly.pid, i, j,
                    )

    def test_distance_consistency_random_pairs(self):
        """distance == 0 exactly when objects intersect."""
        boxes = random_boxes(40, Side.R, mean_size=0.05, seed=5)
        polys = random_polygons(40, Side.S, mean_size=0.05, seed=6)
        for a in boxes[:20]:
            for b in polys[:20]:
                d = a.distance_to(b)
                assert d >= 0
                assert (d == 0.0) == objects_intersect(a, b)

    def test_radius_bounds_object(self):
        for obj in random_polylines(50, Side.R, seed=7):
            ax, ay = obj.anchor()
            for px, py in obj.points:
                assert math.hypot(px - ax, py - ay) <= obj.radius() + 1e-9
