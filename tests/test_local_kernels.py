"""Unit tests for the per-partition join kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.joins.local import (
    LOCAL_KERNELS,
    grid_hash_join,
    nested_loop_join,
    plane_sweep_join,
)


def cloud(n, seed):
    rng = np.random.default_rng(seed)
    return (
        np.arange(n, dtype=np.int64),
        rng.uniform(0, 10, n),
        rng.uniform(0, 10, n),
    )


def as_set(rids, sids):
    return set(zip(rids.tolist(), sids.tolist()))


class TestAgreement:
    @pytest.mark.parametrize("eps", [0.2, 0.7, 1.5])
    def test_kernels_agree(self, eps):
        r = cloud(120, 1)
        s = cloud(140, 2)
        reference = None
        for name, kernel in LOCAL_KERNELS.items():
            rid, sid, _c = kernel(*r, *s, eps)
            got = as_set(rid, sid)
            if reference is None:
                reference = got
            assert got == reference, name

    def test_matches_brute_force_semantics(self):
        r_ids = np.array([0, 1])
        r_xs = np.array([0.0, 5.0])
        r_ys = np.array([0.0, 5.0])
        s_ids = np.array([7, 8])
        s_xs = np.array([0.5, 9.0])
        s_ys = np.array([0.0, 9.0])
        rid, sid, cand = nested_loop_join(r_ids, r_xs, r_ys, s_ids, s_xs, s_ys, 1.0)
        assert as_set(rid, sid) == {(0, 7)}
        assert cand == 4


class TestEdgeCases:
    @pytest.mark.parametrize("kernel", list(LOCAL_KERNELS.values()))
    def test_empty_inputs(self, kernel):
        e = np.empty(0, dtype=np.int64)
        ef = np.empty(0, dtype=np.float64)
        r = cloud(5, 3)
        rid, sid, cand = kernel(e, ef, ef, *r, 1.0)
        assert len(rid) == 0 and cand == 0
        rid, sid, cand = kernel(*r, e, ef, ef, 1.0)
        assert len(rid) == 0 and cand == 0

    def test_threshold_inclusive(self):
        one = np.array([0], dtype=np.int64)
        for kernel in LOCAL_KERNELS.values():
            rid, sid, _ = kernel(
                one, np.array([0.0]), np.array([0.0]),
                one, np.array([1.0]), np.array([0.0]),
                1.0,
            )
            assert len(rid) == 1, kernel

    def test_duplicate_coordinates(self):
        ids = np.array([0, 1], dtype=np.int64)
        xs = np.array([1.0, 1.0])
        ys = np.array([1.0, 1.0])
        for kernel in LOCAL_KERNELS.values():
            rid, sid, _ = kernel(ids, xs, ys, ids, xs, ys, 0.5)
            assert as_set(rid, sid) == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestCandidates:
    def test_plane_sweep_never_more_candidates_than_nested_loop(self):
        r = cloud(100, 4)
        s = cloud(100, 5)
        _, _, c_nl = nested_loop_join(*r, *s, 0.8)
        _, _, c_ps = plane_sweep_join(*r, *s, 0.8)
        assert c_ps <= c_nl

    def test_candidates_at_least_results(self):
        r = cloud(80, 6)
        s = cloud(80, 7)
        for kernel in LOCAL_KERNELS.values():
            rid, _sid, cand = kernel(*r, *s, 1.0)
            assert cand >= len(rid)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 9999),
    n=st.integers(1, 60),
    m=st.integers(1, 60),
    eps=st.floats(0.05, 3.0),
)
def test_property_kernels_equal(seed, n, m, eps):
    r = cloud(n, seed)
    s = cloud(m, seed + 1)
    ref_rid, ref_sid, _ = nested_loop_join(*r, *s, eps)
    ref = as_set(ref_rid, ref_sid)
    for name, kernel in LOCAL_KERNELS.items():
        rid, sid, _ = kernel(*r, *s, eps)
        assert as_set(rid, sid) == ref, name
