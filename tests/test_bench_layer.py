"""Unit tests for the benchmark harness, reporting and registry."""

import os

import pytest

from repro.bench.experiments import ExperimentContext, table1_running_example
from repro.bench.harness import (
    ADAPTIVE_METHODS,
    ALL_COMPARED,
    COMBOS,
    EPS_SWEEP,
    BenchScale,
    DatasetCache,
    run_method,
)
from repro.bench.registry import (
    EXPERIMENTS,
    available_experiments,
    run_experiment,
)
from repro.bench.report import _fmt, format_series, format_table, write_report


class TestBenchScale:
    def test_from_env_defaults(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_N", raising=False)
        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        scale = BenchScale.from_env()
        assert scale.base_n == 20000
        assert not scale.quick

    def test_from_env_overrides(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_N", "1234")
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        scale = BenchScale.from_env()
        assert scale.base_n == 1234
        assert scale.quick


class TestDatasetCache:
    def test_memoizes(self):
        cache = DatasetCache(BenchScale(base_n=500, quick=True))
        a = cache.get("S1")
        b = cache.get("S1")
        assert a is b

    def test_combo(self):
        cache = DatasetCache(BenchScale(base_n=500, quick=True))
        r, s = cache.combo(("R2", "S1"))
        assert r.name == "R2" and s.name == "S1"
        assert len(r) == 214  # 0.427 * 500

    def test_distinct_payloads_cached_separately(self):
        cache = DatasetCache(BenchScale(base_n=300, quick=True))
        assert cache.get("S1").record_bytes != cache.get("S1", payload_bytes=64).record_bytes


class TestContextMemoization:
    def test_eps_sweep_computed_once(self):
        ctx = ExperimentContext(BenchScale(base_n=400, quick=True))
        first = ctx.eps_sweep(("S1", "S2"))
        second = ctx.eps_sweep(("S1", "S2"))
        assert first is second

    def test_quick_mode_shrinks_sweeps(self):
        quick = ExperimentContext(BenchScale(base_n=400, quick=True))
        assert quick.eps_values() == EPS_SWEEP[:2]
        assert quick.size_factors() == (1, 2, 4)


class TestReport:
    def test_fmt(self):
        assert _fmt(1234) == "1,234"
        assert _fmt(0.5) == "0.5"
        assert _fmt(1.23e-7) == "1.23e-07"
        assert _fmt("x") == "x"

    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_format_table_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "a" in text

    def test_format_series(self):
        text = format_series("S", "x", [1, 2], {"m": [10, 20]})
        assert "m" in text and "10" in text

    def test_write_report(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setattr("repro.bench.report.RESULTS_DIR", str(tmp_path))
        path = write_report("unit", "== hello ==")
        assert os.path.exists(path)
        assert "hello" in capsys.readouterr().out

    def test_write_csv(self, tmp_path, monkeypatch):
        from repro.bench.report import write_csv

        monkeypatch.setattr("repro.bench.report.RESULTS_DIR", str(tmp_path))
        path = write_csv("unit", ["a", "b"], [[1, 2], [3, 4]])
        content = open(path).read()
        assert content.splitlines() == ["a,b", "1,2", "3,4"]

    def test_series_to_csv(self, tmp_path, monkeypatch):
        from repro.bench.report import series_to_csv

        monkeypatch.setattr("repro.bench.report.RESULTS_DIR", str(tmp_path))
        path = series_to_csv("s", "eps", [0.1, 0.2], {"m1": [1, 2], "m2": [3, 4]})
        lines = open(path).read().splitlines()
        assert lines[0] == "eps,m1,m2"
        assert lines[1] == "0.1,1,3"


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        names = available_experiments()
        for required in (
            "fig1b", "fig10", "fig11", "fig12", "fig13", "fig14",
            "fig15", "fig16", "fig17", "fig18",
            "table1", "table4", "table5", "table6", "table7",
            "ext-cost-model", "ext-generalized", "ext-objects",
        ):
            assert required in names, required

    def test_run_experiment(self):
        ctx = ExperimentContext(BenchScale(base_n=300, quick=True))
        text, data = run_experiment("table1", ctx)
        assert "41" in text

    def test_unknown_experiment(self):
        ctx = ExperimentContext(BenchScale(base_n=300, quick=True))
        with pytest.raises(ValueError):
            run_experiment("fig99", ctx)

    def test_registry_callables(self):
        assert all(callable(fn) for fn in EXPERIMENTS.values())


class TestHarnessConstants:
    def test_method_sets(self):
        assert set(ADAPTIVE_METHODS) <= set(ALL_COMPARED)
        assert "sedona" in ALL_COMPARED
        assert len(COMBOS) == 3

    def test_run_method_dispatch(self):
        scale = BenchScale(base_n=300, quick=True)
        cache = DatasetCache(scale)
        r, s = cache.combo(("S1", "S2"))
        grid_m = run_method(r, s, 0.02, "lpib", scale)
        sedona_m = run_method(r, s, 0.02, "sedona", scale)
        assert grid_m.method == "lpib"
        assert sedona_m.method == "sedona"
        assert grid_m.results == sedona_m.results

    def test_table1_needs_no_context(self):
        text, results = table1_running_example(None)
        assert results["uni_r"]["total"] == 41
