"""Unit tests for the verification oracle."""

import numpy as np
import pytest

from repro.geometry.point import Side
from repro.verify.oracle import (
    VerificationResult,
    assignment_join_pairs,
    brute_force_pairs,
    kdtree_pairs,
    verify_assignment,
)


def random_cloud(n, seed, lo=0.0, hi=10.0):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(lo, hi, n)
    ys = rng.uniform(lo, hi, n)
    return [(i, float(x), float(y)) for i, (x, y) in enumerate(zip(xs, ys))]


class TestGroundTruth:
    def test_brute_force_known(self):
        r = [(0, 0.0, 0.0), (1, 5.0, 5.0)]
        s = [(10, 0.5, 0.0), (11, 5.0, 5.9), (12, 9.0, 9.0)]
        assert brute_force_pairs(r, s, 1.0) == {(0, 10), (1, 11)}

    def test_brute_force_inclusive_threshold(self):
        r = [(0, 0.0, 0.0)]
        s = [(1, 1.0, 0.0)]
        assert brute_force_pairs(r, s, 1.0) == {(0, 1)}

    def test_kdtree_matches_brute_force(self):
        r = random_cloud(150, 1)
        s = random_cloud(150, 2)
        for eps in (0.3, 1.0, 2.5):
            assert kdtree_pairs(r, s, eps) == brute_force_pairs(r, s, eps)

    def test_kdtree_empty_inputs(self):
        assert kdtree_pairs([], random_cloud(5, 3), 1.0) == set()
        assert kdtree_pairs(random_cloud(5, 3), [], 1.0) == set()


class _OneCellAssigner:
    """Everything to cell 0: correct, duplicate-free, trivially centralized."""

    def assign(self, x, y, side):
        return (0,)


class _TwoCellAssigner:
    """Both inputs to both cells: correct but duplicates every pair."""

    def assign(self, x, y, side):
        return (0, 1)


class _DropAssigner:
    """R to cell 0, S to cell 1: loses every pair."""

    def assign(self, x, y, side):
        return (0,) if side is Side.R else (1,)


class TestVerifyAssignment:
    def test_single_cell_ok(self):
        r, s = random_cloud(60, 4), random_cloud(60, 5)
        res = verify_assignment(_OneCellAssigner(), r, s, 1.0)
        assert res.ok
        assert res.describe() == "assignment is correct and duplicate-free"

    def test_duplicates_detected(self):
        r, s = random_cloud(40, 6), random_cloud(40, 7)
        res = verify_assignment(_TwoCellAssigner(), r, s, 1.5)
        assert res.correct
        assert not res.duplicate_free
        assert res.duplicated
        assert all(count == 2 for count in res.duplicated.values())
        assert "duplicated" in res.describe()

    def test_missing_detected(self):
        r, s = random_cloud(40, 8), random_cloud(40, 9)
        res = verify_assignment(_DropAssigner(), r, s, 1.5)
        assert not res.correct
        assert res.missing == kdtree_pairs(r, s, 1.5)
        assert "missing" in res.describe()

    def test_multiplicity_preserved(self):
        r, s = random_cloud(30, 10), random_cloud(30, 11)
        pairs = assignment_join_pairs(_TwoCellAssigner(), r, s, 1.5)
        assert len(pairs) == 2 * len(set(pairs))

    def test_explicit_expected_set(self):
        r, s = [(0, 0.0, 0.0)], [(1, 0.5, 0.0)]
        res = verify_assignment(_OneCellAssigner(), r, s, 1.0, expected={(0, 1)})
        assert res.ok

    def test_spurious_detected(self):
        res = VerificationResult(
            correct=False, duplicate_free=True, spurious={(1, 2)}
        )
        assert "spurious" in res.describe()


class TestValidateJoinResult:
    def _workload(self):
        from repro.data.generators import gaussian_clusters

        r = gaussian_clusters(400, seed=91, name="r")
        s = gaussian_clusters(400, seed=92, name="s")
        return r, s

    def test_valid_result_passes(self):
        from repro.joins.distance_join import JoinConfig, distance_join
        from repro.verify.invariants import validate_join_result

        r, s = self._workload()
        res = distance_join(r, s, JoinConfig(eps=0.02, method="lpib"))
        validation = validate_join_result(res, r, s, 0.02)
        assert validation.ok, validation.issues

    def test_tampered_result_detected(self):
        import numpy as np

        from repro.joins.distance_join import JoinConfig, distance_join
        from repro.verify.invariants import validate_join_result

        r, s = self._workload()
        res = distance_join(r, s, JoinConfig(eps=0.02, method="lpib"))
        res.r_ids = res.r_ids[:-1]  # drop one pair
        res.s_ids = res.s_ids[:-1]
        res.metrics.results = len(res.r_ids)
        validation = validate_join_result(res, r, s, 0.02)
        assert not validation.matches_oracle
        assert "missing" in validation.issues[0]

    def test_duplicated_result_detected(self):
        import numpy as np

        from repro.joins.distance_join import JoinConfig, distance_join
        from repro.verify.invariants import validate_join_result

        r, s = self._workload()
        res = distance_join(r, s, JoinConfig(eps=0.02, method="diff"))
        res.r_ids = np.concatenate([res.r_ids, res.r_ids[:1]])
        res.s_ids = np.concatenate([res.s_ids, res.s_ids[:1]])
        res.metrics.results = len(res.r_ids)
        validation = validate_join_result(res, r, s, 0.02)
        assert not validation.duplicate_free
