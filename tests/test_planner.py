"""The query-plan layer: logical specs, physical plans, the cost planner.

Five contract groups:

1. *Plan values* -- ``PlanNode``/``PhysicalPlan`` are frozen, hashable,
   printable, comparable values; every driver-reachable stage
   composition is constructible from a registered plan op (the registry
   lint), and a forced-choice plan executes **bit-identically** to the
   plain driver config (against ``tests/golden/driver_goldens.json``).
2. *Planner search* -- enumeration over methods x factors x kernels x
   workers, pin collapsing, deterministic argmin, targeted errors.
3. *Accuracy harness* -- predicted-vs-measured modelled-clock errors,
   bounded on the serial backend, replayable from recorded RunReports.
4. *Auto vs static* -- on the fig10+fig15 mini-suite the planner's
   choice never loses to the worst static plan and stays within a small
   factor of the best (oracle) static plan on measured modelled clocks.
5. *Surfaces* -- ``repro explain``, ``repro join --tuning auto``, the
   serving hook with its fingerprint+eps-bucket plan cache, and the
   pipeline's artifact cache/key pairing errors.
"""

import hashlib
import json
import os
from dataclasses import FrozenInstanceError, replace

import pytest

from repro.data.generators import gaussian_clusters, uniform
from repro.joins.distance_join import JoinConfig, distance_join
from repro.planner import (
    DEFAULT_FACTORS,
    DEFAULT_KERNELS,
    DEFAULT_METHODS,
    DEFAULT_WORKER_CANDIDATES,
    JoinSpec,
    PhysicalPlan,
    PlanCache,
    PlanInputs,
    PlanNode,
    STAGE_BUILDERS,
    clock_errors_from_metrics,
    clock_errors_from_report,
    distance_plan,
    eps_bucket,
    generalized_plan,
    object_plan,
    plan_join,
    replay_reports,
    spark_style_plan,
    summarize_errors,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden", "driver_goldens.json"
)
with open(GOLDEN_PATH) as f:
    GOLDENS = json.load(f)


def pairs_digest(pairs) -> str:
    blob = ";".join(f"{a},{b}" for a, b in sorted(pairs)).encode()
    return hashlib.sha256(blob).hexdigest()


@pytest.fixture(scope="module")
def inputs():
    return (
        gaussian_clusters(1500, seed=1, name="R"),
        uniform(1200, seed=2, name="S"),
    )


# ----------------------------------------------------------------------
# 1. plans as values + the stage-builder registry lint
# ----------------------------------------------------------------------
class TestPlanValues:
    def test_plan_is_frozen_hashable_comparable(self):
        cfg = JoinConfig(eps=0.01)
        a, b = distance_plan(cfg), distance_plan(cfg)
        assert a == b and hash(a) == hash(b)
        assert a.signature() == b.signature()
        c = distance_plan(replace(cfg, method="diff"))
        assert a != c and a.signature() != c.signature()
        with pytest.raises(FrozenInstanceError):
            a.join_kind = "other"

    def test_plan_renders_choices_and_stages(self):
        cfg = JoinConfig(eps=0.01, method="diff", local_kernel="grid_hash",
                         num_workers=7, resolution_factor=3.0)
        text = distance_plan(cfg).render()
        for token in ("diff", "grid_hash", "workers=7",
                      "resolution_factor=3.0", "build_partition",
                      "assign_shuffle_join", "accounting"):
            assert token in text, token

    def test_choices_surface_every_dimension(self):
        cfg = JoinConfig(eps=0.01, fused=False, execution_backend="threads")
        choices = distance_plan(cfg).choices()
        for dim in ("method", "resolution_factor", "kernel", "backend",
                    "workers", "fused"):
            assert dim in choices, dim
        assert choices["fused"] is False
        assert choices["backend"] == "threads"

    def test_every_driver_plan_op_is_registered(self):
        """Registry lint, part 1: plans only reference registered ops."""
        cfg = JoinConfig(eps=0.01, duplicate_free=False)
        from repro.joins.generalized_join import GeneralizedJoinConfig
        plans = [
            distance_plan(cfg),
            distance_plan(JoinConfig(eps=0.01)),
            object_plan(JoinConfig(eps=0.01), eps=0.01, eps_eff=0.02),
            generalized_plan(GeneralizedJoinConfig(eps=0.01)),
            spark_style_plan(JoinConfig(eps=0.01)),
        ]
        for plan in plans:
            for node in plan.root.children:
                assert node.op in STAGE_BUILDERS, (plan.join_kind, node.op)

    def test_every_registered_op_is_driver_reachable(self):
        """Registry lint, part 2: no dead ops in the builder registry."""
        cfg = JoinConfig(eps=0.01, duplicate_free=False)
        from repro.joins.generalized_join import GeneralizedJoinConfig
        reachable = set()
        for plan in (
            distance_plan(cfg),
            object_plan(cfg, eps=0.01, eps_eff=0.02),
            generalized_plan(GeneralizedJoinConfig(eps=0.01)),
            spark_style_plan(cfg),
        ):
            reachable |= {node.op for node in plan.root.children}
        dead = set(STAGE_BUILDERS) - reachable
        assert not dead, f"registered ops no driver plan reaches: {dead}"

    def test_plan_builds_real_stage_objects(self, inputs):
        r, s = inputs
        plan = distance_plan(JoinConfig(eps=0.01, duplicate_free=False))
        stages = plan.stages(PlanInputs(r=r, s=s))
        names = [type(st).__name__ for st in stages]
        assert "ShuffleStage" in names and "LocalJoinStage" in names
        assert "DistinctStage" in names  # duplicate_free=False appends it

    def test_unknown_op_raises(self, inputs):
        r, s = inputs
        plan = PhysicalPlan(
            "distance",
            PlanNode.make("staged_join",
                          children=(PlanNode.make("warp_drive"),)),
        )
        with pytest.raises(ValueError, match="warp_drive"):
            plan.stages(PlanInputs(r=r, s=s))

    def test_wrong_plan_kind_rejected_by_driver(self, inputs):
        r, s = inputs
        plan = object_plan(JoinConfig(eps=0.01), eps=0.01, eps_eff=0.02)
        with pytest.raises(ValueError, match="distance"):
            distance_join(r, s, JoinConfig(eps=0.01), plan=plan)


# ----------------------------------------------------------------------
# 1b. forced-choice plans == plain driver configs, bit for bit
# ----------------------------------------------------------------------
class TestForcedChoiceBitIdentity:
    @pytest.mark.parametrize(
        "row", GOLDENS["distance"],
        ids=[f"{r['method']}-{r['cell_assignment']}"
             for r in GOLDENS["distance"]],
    )
    def test_forced_plan_matches_driver_golden(self, row):
        """A plan with every choice pinned reproduces the golden bits."""
        r = gaussian_clusters(600, seed=1, name="R")
        s = gaussian_clusters(550, seed=2, name="S")
        cfg = JoinConfig(
            eps=0.02, method=row["method"], num_workers=4,
            cell_assignment=row["cell_assignment"], seed=0,
        )
        res = distance_join(r, s, cfg, plan=distance_plan(cfg))
        assert pairs_digest(res.pairs_set()) == row["pairs_sha256"]
        assert repr(res.metrics.construction_time_model) == (
            row["construction_time_model"]
        )
        assert repr(res.metrics.join_time_model) == row["join_time_model"]

    def test_planner_config_executes_like_static_config(self, inputs):
        """plan_join's (config, plan) pair == a hand-built static run."""
        r, s = inputs
        planned = plan_join(
            r, s, 0.01,
            pins={"method": "diff", "resolution_factor": 3.0,
                  "kernel": "grid_hash", "workers": 6},
        )
        via_plan = distance_join(r, s, planned.config, plan=planned.plan)
        static = distance_join(r, s, JoinConfig(
            eps=0.01, method="diff", resolution_factor=3.0,
            local_kernel="grid_hash", num_workers=6,
        ))
        assert pairs_digest(via_plan.pairs_set()) == (
            pairs_digest(static.pairs_set())
        )
        assert repr(via_plan.metrics.exec_time_model) == (
            repr(static.metrics.exec_time_model)
        )


# ----------------------------------------------------------------------
# 2. the cost-based search
# ----------------------------------------------------------------------
class TestPlanJoin:
    def test_full_enumeration_size(self, inputs):
        r, s = inputs
        planned = plan_join(r, s, 0.01)
        grids = (len(DEFAULT_METHODS) - 1) * len(DEFAULT_FACTORS) + 1
        expected = grids * len(DEFAULT_KERNELS) * len(DEFAULT_WORKER_CANDIDATES)
        assert len(planned.candidates) == expected
        keys = {c.key() for c in planned.candidates}
        assert len(keys) == expected  # no duplicate candidates

    def test_chosen_is_argmin_and_deterministic(self, inputs):
        r, s = inputs
        a = plan_join(r, s, 0.01)
        b = plan_join(r, s, 0.01)
        assert a.chosen.key() == b.chosen.key()
        assert a.predicted_clock == min(c.predicted_clock
                                        for c in a.candidates)

    def test_pins_collapse_their_dimension(self, inputs):
        r, s = inputs
        planned = plan_join(
            r, s, 0.01,
            pins={"method": "uni_r", "kernel": "rtree", "workers": 5},
        )
        assert {c.method for c in planned.candidates} == {"uni_r"}
        assert {c.kernel for c in planned.candidates} == {"rtree"}
        assert {c.workers for c in planned.candidates} == {5}
        assert len(planned.candidates) == len(DEFAULT_FACTORS)
        assert planned.config.method == "uni_r"
        assert planned.config.local_kernel == "rtree"
        assert planned.config.num_workers == 5

    def test_eps_grid_prices_on_its_own_grid(self, inputs):
        r, s = inputs
        planned = plan_join(r, s, 0.01, pins={"method": "eps_grid"})
        assert {c.resolution_factor for c in planned.candidates} == {1.0}

    def test_unknown_pin_dimension_raises(self, inputs):
        r, s = inputs
        with pytest.raises(ValueError, match="unknown plan dimension"):
            plan_join(r, s, 0.01, pins={"kernal": "plane_sweep"})

    def test_unknown_kernel_and_method_raise(self, inputs):
        r, s = inputs
        with pytest.raises(ValueError, match="unknown kernel"):
            plan_join(r, s, 0.01, pins={"kernel": "quantum"})
        with pytest.raises(ValueError, match="unknown method"):
            plan_join(r, s, 0.01, pins={"method": "quantum"})
        with pytest.raises(ValueError, match="unknown backend"):
            plan_join(r, s, 0.01, pins={"backend": "quantum"})

    def test_explain_shows_spec_table_and_plan(self, inputs):
        r, s = inputs
        planned = plan_join(r, s, 0.01, pins={"workers": 8})
        text = planned.explain(limit=5)
        assert "logical spec [distance]" in text
        assert "n=1,500" in text and "n=1,200" in text
        assert "workers=8" in text  # the pin is reported
        assert "candidates (" in text and "pred clock" in text
        assert "physical plan [distance]" in text
        assert "*" in text  # the chosen row is marked
        # full spec round-trips through the logical layer
        assert planned.spec == replace(
            JoinSpec.from_pointsets(r, s, 0.01, sample_rate=0.03, seed=0),
            sample_results=planned.spec.sample_results,
        )

    def test_worker_count_moves_the_predicted_clock(self, inputs):
        r, s = inputs
        planned = plan_join(r, s, 0.01,
                            pins={"method": "lpib", "kernel": "plane_sweep",
                                  "resolution_factor": 2.0})
        by_workers = {c.workers: c.predicted_clock
                      for c in planned.candidates}
        assert len(set(by_workers.values())) > 1


class TestEpsBucketAndCache:
    def test_eps_bucket_quantizes_quarter_decades(self):
        assert eps_bucket(0.01) == eps_bucket(0.0105)
        assert eps_bucket(0.009) == eps_bucket(0.01)
        assert eps_bucket(0.001) != eps_bucket(0.01)
        with pytest.raises(ValueError):
            eps_bucket(0.0)

    def test_cache_lru_hits_misses_evictions(self, inputs):
        r, s = inputs
        planned = plan_join(r, s, 0.01)
        cache = PlanCache(capacity=2)
        k1 = PlanCache.key("fp_a", "fp_b", 0.01)
        k2 = PlanCache.key("fp_a", "fp_b", 0.1)
        k3 = PlanCache.key("fp_c", "fp_b", 0.01)
        assert cache.get(k1) is None
        cache.put(k1, planned)
        cache.put(k2, planned)
        assert cache.get(k1) is planned  # refreshes k1's recency
        cache.put(k3, planned)           # evicts k2, the LRU entry
        assert cache.get(k2) is None
        assert cache.get(k3) is planned
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["entries"] == 2
        assert stats["hits"] == 2 and stats["misses"] == 2

    def test_key_separates_pins_and_buckets(self):
        base = PlanCache.key("a", "b", 0.01)
        assert PlanCache.key("a", "b", 0.0102) == base  # same bucket
        assert PlanCache.key("a", "b", 0.1) != base
        assert PlanCache.key("a", "b", 0.01, {"method": "lpib"}) != base
        assert PlanCache.key("a", "b", 0.01, backend="threads") != base


# ----------------------------------------------------------------------
# 3. the predicted-vs-measured accuracy harness
# ----------------------------------------------------------------------
class TestAccuracyHarness:
    @pytest.fixture(scope="class")
    def planned_run(self):
        r = gaussian_clusters(2500, seed=3, name="R")
        s = uniform(2000, seed=4, name="S")
        planned = plan_join(r, s, 0.012, sample_rate=0.2, seed=1)
        result = distance_join(r, s, planned.config, plan=planned.plan)
        return planned, result

    def test_serial_clock_error_is_bounded(self, planned_run):
        """A 20% sample prices the serial modelled clocks to ~tens of %."""
        planned, result = planned_run
        errors = clock_errors_from_metrics(
            planned.chosen.prediction, result.metrics
        )
        by_phase = {e.phase: e for e in errors}
        assert abs(by_phase["construction"].relative_error) < 0.5
        assert abs(by_phase["total"].relative_error) < 0.5

    def test_errors_from_live_report(self, planned_run):
        """The report path measures the same clocks the metrics path does."""
        from repro.engine.telemetry import Telemetry
        planned, _ = planned_run
        r = gaussian_clusters(2500, seed=3, name="R")
        s = uniform(2000, seed=4, name="S")
        telemetry = Telemetry.create()
        cfg = replace(planned.config, telemetry=telemetry)
        result = distance_join(r, s, cfg, plan=planned.plan)
        report = telemetry.report().to_json()
        from_report = {
            e.phase: e for e in clock_errors_from_report(
                planned.chosen.prediction, report
            )
        }
        from_metrics = {
            e.phase: e for e in clock_errors_from_metrics(
                planned.chosen.prediction, result.metrics
            )
        }
        for phase in ("construction", "join", "total"):
            assert from_report[phase].measured == pytest.approx(
                from_metrics[phase].measured
            )

    def test_replay_recorded_reports(self, planned_run):
        """Recorded report JSON with an embedded planner section replays."""
        from repro.engine.telemetry import Telemetry
        planned, _ = planned_run
        r = gaussian_clusters(2500, seed=3, name="R")
        s = uniform(2000, seed=4, name="S")
        telemetry = Telemetry.create()
        cfg = replace(planned.config, telemetry=telemetry)
        distance_join(r, s, cfg, plan=planned.plan)
        pred = planned.chosen.prediction
        telemetry.registry.set_meta("planner", {
            "predicted": {"construction": pred.construction_time,
                          "join": pred.join_time},
        })
        recorded = json.loads(json.dumps(telemetry.report().to_json()))
        unplanned = {"stages": [], "planner": None}
        errors = replay_reports([recorded, unplanned, recorded])
        phases = [e.phase for e in errors]
        assert phases.count("total") == 2  # the unplanned report is skipped
        summary = summarize_errors(errors)
        assert summary["count"] == len(errors)
        assert summary["phases"]["total"]["max_abs_relative_error"] < 0.5

    def test_summarize_empty_and_zero_measured(self):
        assert summarize_errors([])["count"] == 0
        from repro.planner import ClockError
        err = ClockError("join", predicted=1.0, measured=0.0)
        assert err.relative_error == float("inf")
        assert ClockError("join", 0.0, 0.0).relative_error == 0.0


# ----------------------------------------------------------------------
# 4. auto vs static on the fig10+fig15 mini-suite
# ----------------------------------------------------------------------
MINI_SUITE = [
    # (r_seed_kind, eps, factors): two fig10 points + the fig15 sweep
    ("fig10_a", 0.009, (2.0, 3.0, 4.0)),
    ("fig10_b", 0.015, (2.0, 3.0, 4.0)),
    ("fig15", 0.012, (2.0, 3.0, 4.0, 5.0)),
]


class TestAutoVsStatic:
    @pytest.fixture(scope="class")
    def mini_inputs(self):
        return {
            "fig10_a": (gaussian_clusters(2000, seed=5, name="S1"),
                        gaussian_clusters(1800, seed=6, name="S2")),
            "fig10_b": (uniform(2000, seed=7, name="R1"),
                        gaussian_clusters(1800, seed=5, name="S1")),
            "fig15": (gaussian_clusters(2000, seed=5, name="S1"),
                      gaussian_clusters(1800, seed=6, name="S2")),
        }

    @pytest.mark.parametrize("workload,eps,factors", MINI_SUITE,
                             ids=[w[0] for w in MINI_SUITE])
    def test_auto_never_loses_to_worst_static(
        self, mini_inputs, workload, eps, factors
    ):
        r, s = mini_inputs[workload]
        kernel, workers = "plane_sweep", 8

        def measured(method, factor):
            cfg = JoinConfig(eps=eps, method=method,
                             resolution_factor=factor, local_kernel=kernel,
                             num_workers=workers)
            return distance_join(r, s, cfg).metrics.exec_time_model

        statics = {
            (m, f): measured(m, f)
            for m in ("lpib", "diff", "uni_r", "uni_s")
            for f in factors
        }
        statics[("eps_grid", 1.0)] = measured("eps_grid", 1.0)
        planned = plan_join(
            r, s, eps, pins={"kernel": kernel, "workers": workers},
            factors=factors, sample_rate=0.15, seed=2,
        )
        auto = measured(planned.chosen.method,
                        planned.chosen.resolution_factor)
        best, worst = min(statics.values()), max(statics.values())
        assert auto <= worst, (
            f"planner lost to worst-static: {auto} > {worst}"
        )
        # regret vs the oracle stays small: the 15% sample prices the
        # method/factor grid well enough to land near the true best
        assert auto <= 1.25 * best, (
            f"planner regret too high: {auto} vs best {best}"
        )


# ----------------------------------------------------------------------
# 5a. pipeline entry: artifact cache/key must arrive as a pair
# ----------------------------------------------------------------------
class TestArtifactCacheKeyPairing:
    def test_key_without_cache_raises(self, inputs):
        r, s = inputs
        cfg = JoinConfig(eps=0.01, artifact_key=("grid", "abc"))
        with pytest.raises(ValueError, match="artifact_key is set"):
            distance_join(r, s, cfg)

    def test_cache_without_key_raises(self, inputs):
        from repro.serving.cache import ArtifactCache
        r, s = inputs
        cfg = JoinConfig(eps=0.01, artifact_cache=ArtifactCache(1 << 20))
        with pytest.raises(ValueError, match="artifact_cache is set"):
            distance_join(r, s, cfg)


# ----------------------------------------------------------------------
# 5b. CLI surfaces: explain + join --tuning auto
# ----------------------------------------------------------------------
class TestCliSurfaces:
    def test_explain_prints_candidate_table(self, capsys):
        from repro.cli import main
        rc = main(["explain", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500", "--limit", "4"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "logical spec [distance]" in out
        assert "pred clock" in out
        assert "chosen physical plan:" in out

    def test_explain_respects_pins(self, capsys):
        from repro.cli import main
        rc = main(["explain", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500", "--method", "diff",
                   "--kernel", "grid_hash", "--workers", "6",
                   "--limit", "0"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "method=diff" in out and "kernel=grid_hash" in out
        table = out.split("candidates (")[1]
        assert "lpib" not in table and "plane_sweep" not in table

    def test_join_tuning_auto_runs_chosen_plan(self, capsys):
        from repro.cli import main
        rc = main(["join", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500", "--tuning", "auto"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "planner: chose method=" in out
        assert "candidates)" in out

    def test_join_tuning_auto_keeps_explicit_pins(self, capsys):
        from repro.cli import main
        rc = main(["join", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500", "--tuning", "auto",
                   "--method", "diff", "--workers", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "method=diff" in out and "workers=6" in out

    def test_join_tuning_auto_report_has_planner_section(self, capsys):
        from repro.cli import main
        rc = main(["join", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500", "--tuning", "auto", "--report"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "\nplanner\n" in out
        assert "pred" in out and "err" in out

    def test_join_tuning_auto_rejects_other_variants(self, capsys):
        from repro.cli import main
        rc = main(["join", "--join", "generalized", "--tuning", "auto",
                   "--base-n", "500"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "no planner" in err

    def test_join_tuning_auto_rejects_unplannable_method(self, capsys):
        from repro.cli import main
        rc = main(["join", "--tuning", "auto", "--method", "naive",
                   "--base-n", "500"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "cannot be planned" in err

    def test_static_join_unchanged_by_default(self, capsys):
        from repro.cli import main
        rc = main(["join", "--r", "S1", "--s", "S2", "--eps", "0.012",
                   "--base-n", "1500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "method=lpib" in out
        assert "planner:" not in out


# ----------------------------------------------------------------------
# 5c. the serving hook: per-query planning + the plan cache
# ----------------------------------------------------------------------
@pytest.fixture(scope="class")
def plan_server():
    from repro.serving import start_in_thread
    from repro.serving.client import connect
    from repro.serving.server import ServerConfig

    handle = start_in_thread(ServerConfig())
    client = connect(handle.address)
    client.register("A", "S1", base_n=1500)
    client.register("B", "S2", base_n=1500)
    yield client
    client.close()
    handle.stop()


class TestServingPlanner:
    def test_auto_query_plans_and_reports_error(self, plan_server):
        resp = plan_server.query("A", "B", 0.012, tuning="auto",
                                 reuse_results=False)
        p = resp["planner"]
        assert p["cache_hit"] is False
        assert p["chosen"]["method"] in DEFAULT_METHODS
        assert p["candidates"] > 1
        assert "total" in p["errors"]
        assert isinstance(p["errors"]["total"]["relative_error"], float)

    def test_plan_cache_shares_eps_bucket(self, plan_server):
        plan_server.query("A", "B", 0.015, tuning="auto",
                          reuse_results=False)
        resp = plan_server.query("A", "B", 0.0151, tuning="auto",
                                 reuse_results=False)
        assert resp["planner"]["cache_hit"] is True
        stats = plan_server.stats()
        assert stats["plan_cache"]["hits"] >= 1
        assert stats["serving"]["plans"] >= 1

    def test_client_pins_travel_and_key_separately(self, plan_server):
        resp = plan_server.query("A", "B", 0.012, tuning="auto",
                                 method="diff", reuse_results=False)
        assert resp["planner"]["chosen"]["method"] == "diff"
        assert resp["planner"]["pins"] == {"method": "diff"}
        assert resp["planner"]["cache_hit"] is False  # pins key apart

    def test_auto_matches_static_results_bit_for_bit(self, plan_server):
        auto = plan_server.query("A", "B", 0.012, tuning="auto",
                                 reuse_results=False, max_pairs=50)
        c = auto["planner"]["chosen"]
        static = plan_server.query(
            "A", "B", 0.012, method=c["method"], kernel=c["kernel"],
            workers=c["workers"], resolution_factor=c["resolution_factor"],
            reuse_results=False, max_pairs=50,
        )
        assert static["results"] == auto["results"]
        assert static["pairs"] == auto["pairs"]

    def test_server_pinned_choices_error_is_targeted(self, plan_server):
        from repro.serving.client import ServerError
        with pytest.raises(ServerError) as exc:
            plan_server.query("A", "B", 0.012, tuning="auto",
                              backend="threads")
        msg = str(exc.value)
        assert "server pins" in msg and "backend=serial" in msg

    def test_bad_tuning_value_rejected(self, plan_server):
        from repro.serving.client import ServerError
        with pytest.raises(ServerError, match="tuning"):
            plan_server.query("A", "B", 0.012, tuning="turbo")

    def test_auto_report_carries_planner_section(self, plan_server):
        resp = plan_server.query("A", "B", 0.012, tuning="auto",
                                 reuse_results=False, report=True)
        assert "planner" in resp["report"]
        assert "plan_cache_hit" in resp["report"]
