"""Telemetry subsystem tests: spans, registry, logging, reports, and the
instrumented pipeline.

The observability contracts under test:

- span trees are well-formed (one root, no orphans, children inside
  parents) for every kernel x backend combination;
- the *set* of spans is backend-independent: a processes run records the
  same (cat, name, worker, attempt) spans as a serial run, pickled
  child-side spans included;
- chaos runs surface the triggering exception on their recovery spans
  (no more silent failures) and salvage runs record what they salvaged;
- telemetry never changes the answer: results and metrics of a traced
  run are bit-identical to an untraced one;
- the disabled tracer is cheap enough to leave compiled in everywhere
  (the perfsmoke guard at the bottom).
"""

import json
import logging

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters
from repro.engine.telemetry import (
    LOG_LEVELS,
    MetricsRegistry,
    RunReport,
    Telemetry,
    Tracer,
    configure,
    get_logger,
    span_children,
    validate_span_tree,
    write_trace,
)
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.local import LOCAL_KERNELS

EPS = 0.02
KERNELS = sorted(LOCAL_KERNELS)
BACKENDS = ("serial", "threads", "processes")

#: Stage spans every traced distance join must contain, in pipeline order.
DISTANCE_STAGES = (
    "build_partition", "assign", "shuffle", "shuffle_recovery",
    "origins", "local_join", "collect", "join_accounting",
)


def small_inputs():
    return (
        gaussian_clusters(420, seed=51, name="R"),
        gaussian_clusters(380, seed=52, name="S"),
    )


def traced_join(backend="serial", kernel="plane_sweep", **overrides):
    """A traced small distance join; returns (result, telemetry)."""
    telemetry = Telemetry.create()
    r, s = small_inputs()
    cfg = JoinConfig(
        eps=EPS,
        method="lpib",
        num_workers=3,
        local_kernel=kernel,
        execution_backend=backend,
        executor_workers=2,
        telemetry=telemetry,
        **overrides,
    )
    return distance_join(r, s, cfg), telemetry


def span_key(span):
    """Backend-independent identity of a span."""
    return (span.cat, span.name, span.worker, span.attrs.get("attempt"))


# ----------------------------------------------------------------------
# tracer unit tests
# ----------------------------------------------------------------------
class TestTracer:
    def test_nesting_and_attributes(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job", cat="job") as job:
            with tracer.span("stage", cat="stage", phase="join") as stage:
                tracer.event("tick", cat="recovery", worker=3, n=7)
        spans = tracer.spans()
        assert [s.name for s in spans] == ["job", "stage", "tick"]
        job_s, stage_s, tick = spans
        assert stage_s.parent_id == job_s.span_id
        assert tick.parent_id == stage_s.span_id
        assert tick.kind == "event"
        assert tick.worker == 3 and tick.attrs["n"] == 7
        assert stage_s.attrs["phase"] == "join"
        validate_span_tree(spans)
        children = span_children(spans)
        assert [c.name for c in children[job_s.span_id]] == ["stage"]
        assert [c.name for c in children[None]] == ["job"]

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("job", cat="job"):
            tracer.event("tick", cat="recovery")
        begun = tracer.begin("task", cat="task")
        tracer.end(begun)
        assert len(tracer) == 0
        assert tracer.spans() == []

    def test_begin_without_end_is_dropped(self):
        tracer = Tracer(enabled=True)
        span = tracer.begin("task", cat="task", worker=0)
        assert tracer.spans() == []  # unfinished spans never export
        tracer.end(span)
        assert [s.name for s in tracer.spans()] == ["task"]

    def test_export_merge_roundtrip(self):
        parent = Tracer(enabled=True, run_id="shared")
        child = Tracer(enabled=True, run_id="shared")
        with parent.span("job", cat="job") as job:
            with child.span("task_run", cat="task", worker=1):
                pass
            payload = child.export_payload()
            parent.merge(payload)
        names = {s.name for s in parent.spans()}
        assert names == {"job", "task_run"}
        parent.merge(None)  # a lost child ships nothing; a no-op
        assert len(parent) == 2

    def test_span_ids_unique_across_processes(self):
        # ids embed the recording pid, so merged child spans can't collide
        tracer = Tracer(enabled=True)
        a = tracer.begin("x", cat="task")
        b = tracer.begin("y", cat="task")
        assert a.span_id != b.span_id
        assert a.span_id.split(".")[0] == b.span_id.split(".")[0]

    def test_validate_rejects_orphans(self):
        tracer = Tracer(enabled=True)
        with tracer.span("job", cat="job"):
            pass
        spans = tracer.spans()
        orphan = spans[0].__class__(
            name="ghost", span_id="dead.1", parent_id="no.such.parent",
            cat="task", start=spans[0].start, end=spans[0].end,
        )
        with pytest.raises(ValueError, match="orphan"):
            validate_span_tree(spans + [orphan])


class TestTraceFiles:
    def test_jsonl_roundtrip(self, tmp_path):
        tracer = Tracer(enabled=True, run_id="abc123")
        with tracer.span("job", cat="job"):
            tracer.event("tick", cat="recovery", worker=2)
        path = tmp_path / "trace.jsonl"
        write_trace(tracer.spans(), str(path), fmt="jsonl", run_id="abc123")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0] == {"type": "run", "run_id": "abc123"}
        spans = [l for l in lines[1:] if l["type"] == "span"]
        assert {s["name"] for s in spans} == {"job", "tick"}
        assert all("span_id" in s and "start" in s for s in spans)

    def test_chrome_format(self, tmp_path):
        tracer = Tracer(enabled=True, run_id="abc123")
        with tracer.span("job", cat="job"):
            tracer.event("tick", cat="recovery", worker=2)
        path = tmp_path / "trace.json"
        write_trace(tracer.spans(), str(path), fmt="chrome", run_id="abc123")
        doc = json.loads(path.read_text())
        assert doc["metadata"]["run_id"] == "abc123"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases == {"X", "i"}  # complete spans + instant events
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] >= 0 for e in complete)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="format"):
            write_trace([], str(tmp_path / "x"), fmt="xml")


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.counter("c").inc(2)
        assert reg.value("c") == 3
        assert isinstance(reg.value("c"), int)  # int increments stay int
        assert reg.gauge("g").set(1.5) == 1.5  # set returns value as given
        h = reg.histogram("h")
        for v in (0.001, 0.002, 0.004, 10.0):
            h.observe(v)
        snap = reg.snapshot()["metrics"]["h"]
        assert snap["count"] == 4
        assert snap["max"] == 10.0
        assert 0.0005 < snap["p50"] < 0.01

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_meta_side_table(self):
        reg = MetricsRegistry()
        reg.set_meta("job", {"method": "lpib"})
        assert reg.get_meta("job")["method"] == "lpib"
        assert reg.get_meta("missing") is None
        assert reg.get_meta("missing", {}) == {}


# ----------------------------------------------------------------------
# structured logging
# ----------------------------------------------------------------------
class TestLogging:
    def test_logger_carries_run_id(self):
        records = []

        class Capture(logging.Handler):
            def emit(self, record):
                records.append(record)

        root = logging.getLogger("repro")
        handler = Capture()
        root.addHandler(handler)
        try:
            get_logger("repro.test", "run42").warning("hello %s", "world")
        finally:
            root.removeHandler(handler)
        assert records and records[0].run_id == "run42"
        assert records[0].getMessage() == "hello world"

    def test_configure_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        level, propagate = root.level, root.propagate
        try:
            configure("warning")
            configure("debug")
            added = [h for h in root.handlers if h not in before]
            assert len(added) == 1
            assert root.level == logging.DEBUG
            configure("quiet")
            assert root.level >= logging.CRITICAL
        finally:
            for h in list(root.handlers):
                if h not in before:
                    root.removeHandler(h)
            root.setLevel(level)
            root.propagate = propagate

    def test_bad_level_rejected(self):
        with pytest.raises(ValueError):
            configure("verbose")
        assert "quiet" in LOG_LEVELS


# ----------------------------------------------------------------------
# instrumented pipeline: span trees, backend equivalence, stage lint
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", KERNELS)
def test_span_tree_well_formed_matrix(kernel, backend):
    res, telemetry = traced_join(backend=backend, kernel=kernel)
    assert len(res) > 0
    spans = telemetry.tracer.spans()
    validate_span_tree(spans)
    jobs = [s for s in spans if s.cat == "job"]
    assert len(jobs) == 1
    stage_names = [s.name for s in spans if s.cat == "stage"]
    assert tuple(stage_names) == DISTANCE_STAGES
    # every task attempt hangs off the local_join stage
    local = next(s for s in spans if s.name == "local_join")
    tasks = [s for s in spans if s.name == "task"]
    assert tasks and all(t.parent_id == local.span_id for t in tasks)
    # and every successful attempt has an inner execution span
    runs = [s for s in spans if s.name == "task_run"]
    assert {r.parent_id for r in runs} <= {t.span_id for t in tasks}


def test_every_registered_stage_emits_exactly_one_span(monkeypatch):
    """Lint: the stage list the driver registers IS the stage span list."""
    import importlib

    from repro.joins.pipeline import run_staged_join

    # the package re-exports the driver *function* under the same name,
    # so fetch the module itself
    dj = importlib.import_module("repro.joins.distance_join")

    registered = []

    def spy(stages, ctx):
        registered.extend(s.name for s in stages)
        return run_staged_join(stages, ctx)

    monkeypatch.setattr(dj, "run_staged_join", spy)
    _res, telemetry = traced_join(duplicate_free=False)
    stage_spans = [
        s.name for s in telemetry.tracer.spans() if s.cat == "stage"
    ]
    assert registered, "the spy never saw the stage list"
    assert stage_spans == registered  # one span per stage, in order
    assert "distinct" in stage_spans  # the dedup variant is covered too


def test_serial_and_processes_record_the_same_span_set():
    _res_a, tel_a = traced_join(backend="serial")
    _res_b, tel_b = traced_join(backend="processes")
    keys_a = sorted(map(span_key, tel_a.tracer.spans()))
    keys_b = sorted(map(span_key, tel_b.tracer.spans()))
    assert keys_a == keys_b


def test_telemetry_does_not_change_the_answer():
    r, s = small_inputs()
    cfg = JoinConfig(eps=EPS, method="lpib", num_workers=3)
    plain = distance_join(r, s, cfg)
    traced, telemetry = traced_join()
    assert np.array_equal(plain.r_ids, traced.r_ids)
    assert np.array_equal(plain.s_ids, traced.s_ids)
    # the registry is a view over the metrics, not a rounding of them
    m = traced.metrics
    assert telemetry.registry.value("join.shuffle_bytes") == m.shuffle_bytes
    assert telemetry.registry.value("join.results") == m.results
    assert (
        telemetry.registry.value("join.join_time_model") == m.join_time_model
    )


def test_shuffle_matrix_totals_match_accounting():
    res, telemetry = traced_join()
    matrix = np.asarray(telemetry.registry.get_meta("shuffle.matrix"))
    assert matrix.shape == (3, 3)
    assert matrix.sum() == res.metrics.shuffle_bytes
    off_diagonal = matrix.sum() - np.trace(matrix)
    assert off_diagonal == res.metrics.remote_bytes


# ----------------------------------------------------------------------
# chaos: recovery spans carry the triggering exception
# ----------------------------------------------------------------------
@pytest.mark.chaos
@pytest.mark.parametrize("backend", BACKENDS)
def test_kill_faults_surface_exception_on_recovery_spans(backend):
    res, telemetry = traced_join(
        backend=backend, faults="kill:p=1:times=1", max_retries=3,
    )
    assert res.metrics.task_retries > 0
    spans = telemetry.tracer.spans()
    validate_span_tree(spans)
    failures = [s for s in spans if s.name == "task_failure"]
    assert failures, "retried attempts must leave task_failure events"
    # a killed process pool child surfaces as BrokenProcessPool (the
    # interpreter really died); in-process backends see the injected type
    expected = {"InjectedWorkerKill", "BrokenProcessPool"}
    for event in failures:
        assert event.cat == "recovery"
        assert event.attrs["error_type"] in expected
        assert event.worker is not None
    assert any(e.attrs["error_message"] for e in failures)
    # the failure log is also published for the run report
    published = telemetry.registry.get_meta("executor.failures")
    assert published and all(f["error_type"] in expected for f in published)
    # failed attempts keep their scheduler-side task span, annotated
    failed_tasks = [
        s for s in spans
        if s.name == "task" and "error_type" in s.attrs
    ]
    assert len(failed_tasks) == len(failures)


@pytest.mark.chaos
def test_salvage_spans_record_salvaged_cells(tmp_path):
    res, telemetry = traced_join(
        faults="kill:p=1:times=1", max_retries=3,
        spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
    )
    m = res.metrics
    assert m.cells_salvaged > 0
    spans = telemetry.tracer.spans()
    salvages = [s for s in spans if s.name == "checkpoint_salvage"]
    assert salvages
    assert sum(s.attrs["cells"] for s in salvages) == m.cells_salvaged
    assert all(s.cat == "salvage" for s in salvages)
    spills = [s for s in spans if s.name == "block_spill"]
    assert len(spills) == m.blocks_spilled
    assert all(s.attrs["bytes"] > 0 for s in spills)


# ----------------------------------------------------------------------
# run report
# ----------------------------------------------------------------------
class TestRunReport:
    def test_sections_of_a_clean_run(self):
        res, telemetry = traced_join()
        report = telemetry.report()
        doc = report.to_json()
        assert doc["header"]["results"] == res.metrics.results
        assert [r["stage"] for r in doc["stages"]] == list(DISTANCE_STAGES)
        assert len(doc["workers"]) == 3
        assert doc["recovery"] == []
        assert len(doc["shuffle_matrix"]) == 3
        text = report.render()
        for needle in ("stages", "workers", "shuffle bytes", "metrics"):
            assert needle in text
        json.loads(report.render_json())  # machine-readable twin parses

    def test_recovery_timeline_names_the_exception(self):
        _res, telemetry = traced_join(
            faults="kill:p=1:times=1", max_retries=3,
        )
        report = telemetry.report()
        timeline = report.recovery_timeline()
        assert any(
            row["event"] == "task_failure"
            and row["error_type"] == "InjectedWorkerKill"
            for row in timeline
        )
        text = report.render()
        assert "recovery timeline" in text
        assert "InjectedWorkerKill" in text

    def test_empty_report_renders(self):
        report = RunReport([], MetricsRegistry(), run_id="empty")
        assert "empty" in report.render()
        assert report.to_json()["stages"] == []


# ----------------------------------------------------------------------
# spill-dir fallback warning (no more silent relocation)
# ----------------------------------------------------------------------
def test_unusable_spill_dir_warns_and_falls_back(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("a file where the spill dir should go")
    records = []

    class Capture(logging.Handler):
        def emit(self, record):
            records.append(record)

    root = logging.getLogger("repro")
    handler = Capture()
    root.addHandler(handler)
    level = root.level
    root.setLevel(logging.WARNING)
    try:
        res, _tel = traced_join(spill="disk", spill_dir=str(blocker))
    finally:
        root.removeHandler(handler)
        root.setLevel(level)
    assert len(res) > 0  # the job still finishes, on the temp fallback
    warnings = [
        r for r in records
        if r.levelno >= logging.WARNING and "falling back" in r.getMessage()
    ]
    assert warnings, "the fallback must be announced"
    assert str(blocker) in warnings[0].getMessage()


# ----------------------------------------------------------------------
# perfsmoke: the disabled tracer must cost (almost) nothing
# ----------------------------------------------------------------------
@pytest.mark.perfsmoke
def test_disabled_tracer_overhead_under_two_percent():
    """Estimated per-run tracing cost with tracing off stays < 2%.

    Deliberately not a wall-clock A/B of two full joins (too noisy for
    CI): microbenchmark the disabled-path cost per telemetry call, count
    how many calls an instrumented run actually makes (the span count of
    an enabled run bounds it), and compare against the measured join
    wall of the bench-sized config.
    """
    import timeit

    res, telemetry = traced_join()
    call_sites = len(telemetry.tracer.spans()) + 8  # spans + epilogue meta
    join_wall = sum(res.metrics.wall_times.values())

    disabled = Tracer(enabled=False)

    def one_call():
        with disabled.span("task", cat="task", worker=0, attempt=0):
            pass

    n = 20_000
    per_call = timeit.timeit(one_call, number=n) / n
    estimated = per_call * call_sites
    assert estimated < 0.02 * join_wall, (
        f"disabled tracing would cost {estimated * 1e6:.1f}us of a "
        f"{join_wall * 1e3:.1f}ms join ({estimated / join_wall:.2%})"
    )
