"""Kernel x backend equivalence matrix for the execution backends.

Every local kernel must produce the same result-pair set and the same
candidate count whether the local-join phase runs serially, on a thread
pool, or on a process pool -- and the parallel backends must be
*bit-identical* to serial (same arrays, same order), since the executor
stitches per-cell outputs back in plan order.
"""

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters
from repro.data.pointset import PointSet
from repro.engine.executor import BACKENDS, build_execution_plan, execute_plan
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.local import LOCAL_KERNELS

EPS = 0.02
KERNELS = sorted(LOCAL_KERNELS)


def uniform_points(n, seed, name):
    rng = np.random.default_rng(seed)
    return PointSet(rng.uniform(0, 1, n), rng.uniform(0, 1, n), name=name)


WORKLOADS = {
    "gaussian": lambda: (
        gaussian_clusters(700, seed=31, name="R"),
        gaussian_clusters(650, seed=32, name="S"),
    ),
    "uniform": lambda: (
        uniform_points(700, 33, "R"),
        uniform_points(650, 34, "S"),
    ),
}


def run(r, s, kernel, backend):
    cfg = JoinConfig(
        eps=EPS,
        method="lpib",
        num_workers=4,
        local_kernel=kernel,
        execution_backend=backend,
        executor_workers=2,
    )
    return distance_join(r, s, cfg)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("kernel", KERNELS)
def test_backends_bit_identical(workload, kernel):
    r, s = WORKLOADS[workload]()
    reference = run(r, s, kernel, "serial")
    assert len(reference) > 0  # a vacuous matrix proves nothing
    for backend in BACKENDS:
        res = run(r, s, kernel, backend)
        assert np.array_equal(res.r_ids, reference.r_ids), (kernel, backend)
        assert np.array_equal(res.s_ids, reference.s_ids), (kernel, backend)
        assert res.metrics.candidate_pairs == reference.metrics.candidate_pairs
        assert res.metrics.results == reference.metrics.results
        assert res.metrics.execution_backend == backend
        # the modelled clocks must not depend on how the phase really ran
        assert res.metrics.join_time_model == pytest.approx(
            reference.metrics.join_time_model
        )


@pytest.mark.parametrize("kernel", KERNELS)
def test_kernels_agree_through_driver(kernel):
    r, s = WORKLOADS["gaussian"]()
    reference = run(r, s, "plane_sweep", "serial").pairs_set()
    assert run(r, s, kernel, "processes").pairs_set() == reference


@pytest.mark.parametrize("backend", BACKENDS)
def test_empty_intersection(backend):
    """Disjoint inputs: every backend returns the empty result."""
    r = uniform_points(80, 41, "R")
    far = uniform_points(80, 42, "S")
    # shift keeps S disjoint from R (gap 0.5 >> eps) without blowing up
    # the eps-grid resolution, which tracks the joint MBR extent
    s = PointSet(far.xs + 1.5, far.ys + 1.5, name="S")
    for kernel in KERNELS:
        res = run(r, s, kernel, backend)
        assert len(res) == 0
        assert res.metrics.results == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_all_duplicate_coordinates(backend):
    """Every point at one location: the full cross product results."""
    n = 40
    r = PointSet(np.full(n, 0.5), np.full(n, 0.5), name="R")
    s = PointSet(np.full(n, 0.5), np.full(n, 0.5), name="S")
    for kernel in KERNELS:
        res = run(r, s, kernel, backend)
        assert len(res) == n * n, (kernel, backend)


@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_plan_level_equivalence(backend):
    """The executor itself (no driver): results stitch back in plan order."""
    rng = np.random.default_rng(7)
    n = 600
    r = (np.arange(n, dtype=np.int64), rng.uniform(0, 1, n), rng.uniform(0, 1, n))
    s = (np.arange(n, dtype=np.int64), rng.uniform(0, 1, n), rng.uniform(0, 1, n))

    def to_groups(xs, ys):
        cell = (xs > 0.5).astype(np.int64) * 2 + (ys > 0.5).astype(np.int64)
        return {c: np.flatnonzero(cell == c) for c in range(4)}

    plan = build_execution_plan(
        r, s, to_groups(r[1], r[2]), to_groups(s[1], s[2]),
        {0: 0, 1: 1, 2: 0, 3: 1},
    )
    ref = execute_plan(plan, "grid_hash", EPS, backend="serial")
    par = execute_plan(plan, "grid_hash", EPS, backend=backend, max_workers=2)
    assert np.array_equal(ref.candidates, par.candidates)
    for a, b in zip(ref.pair_r, par.pair_r):
        assert np.array_equal(a, b)
    for a, b in zip(ref.pair_s, par.pair_s):
        assert np.array_equal(a, b)
    assert set(par.worker_wall) == {0, 1}
    assert par.wall_makespan >= 0.0


def test_unknown_backend_rejected():
    r, s = WORKLOADS["uniform"]()
    with pytest.raises(ValueError, match="backend"):
        run(r, s, "plane_sweep", "gpu")
