"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.data.io import read_points_text


class TestJoin:
    def test_join_generated(self, capsys):
        rc = main(["join", "--r", "S1", "--s", "S2", "--base-n", "1500",
                   "--eps", "0.02", "--method", "uni_r"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "uni_r" in out
        assert "results=" in out

    def test_join_show_pairs(self, capsys):
        rc = main(["join", "--base-n", "1500", "--eps", "0.02",
                   "--show-pairs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("(") >= 2

    def test_join_from_files(self, tmp_path, capsys):
        for name in ("S1", "S2"):
            main(["generate", name, str(tmp_path / f"{name}.txt"),
                  "--base-n", "800"])
        capsys.readouterr()
        rc = main(["join", "--r", str(tmp_path / "S1.txt"),
                   "--s", str(tmp_path / "S2.txt"), "--eps", "0.02"])
        assert rc == 0
        assert "lpib" in capsys.readouterr().out

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--method", "bogus"])

    def test_join_with_faults_reports_recovery(self, capsys):
        rc = main(["join", "--base-n", "1500", "--eps", "0.02",
                   "--method", "uni_r", "--backend", "threads",
                   "--faults", "kill:p=1:times=1", "--max-retries", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "attempts=" in out
        assert "retries=" in out
        assert "speculative_wins=" in out

    def test_join_with_spill_reports_block_store(self, tmp_path, capsys):
        rc = main(["join", "--base-n", "1500", "--eps", "0.02",
                   "--workers", "3", "--spill", "disk",
                   "--spill-dir", str(tmp_path / "spill"),
                   "--checkpoint-cells",
                   "--faults", "fetch:p=1:times=1,kill:p=1:times=1",
                   "--max-retries", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "block store [disk]:" in out
        assert "salvaged_cells=" in out
        assert not (tmp_path / "spill").exists()  # cleaned up on return


class TestJoinVariants:
    """`--join` selects the driver; every variant shares the execution
    surface of the staged pipeline (backend, faults, spill)."""

    def test_object_join_runs(self, capsys):
        rc = main(["join", "--join", "object", "--base-n", "150",
                   "--eps", "0.01", "--method", "lpib", "--workers", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "join=object" in out and "objects" in out
        assert "results=" in out

    def test_intersection_join_runs(self, capsys):
        rc = main(["join", "--join", "intersection", "--base-n", "150",
                   "--method", "uni_r", "--workers", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "join=intersection" in out
        assert "plane_sweep" in out  # object joins sweep anchors

    def test_generalized_join_runs(self, capsys):
        rc = main(["join", "--join", "generalized", "--base-n", "400",
                   "--eps", "0.02", "--method", "clone",
                   "--partition", "quadtree", "--workers", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "join=generalized" in out
        assert "results=" in out

    def test_spark_style_join_runs(self, capsys):
        rc = main(["join", "--join", "spark-style", "--base-n", "400",
                   "--eps", "0.02", "--method", "lpib", "--workers", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "join=spark-style" in out
        assert "produced before distinct" in out
        assert "shuffle:" in out

    def test_object_join_with_backend_faults_and_spill(self, tmp_path, capsys):
        rc = main(["join", "--join", "object", "--base-n", "150",
                   "--eps", "0.01", "--workers", "3",
                   "--backend", "threads", "--faults", "kill:p=1:times=1",
                   "--max-retries", "3", "--spill", "disk",
                   "--spill-dir", str(tmp_path / "spill"),
                   "--checkpoint-cells"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "local join [threads/plane_sweep]:" in out
        assert "attempts=" in out
        assert "block store [disk]:" in out
        assert not (tmp_path / "spill").exists()  # cleaned up on return

    def test_generalized_join_with_faults(self, capsys):
        rc = main(["join", "--join", "generalized", "--base-n", "400",
                   "--eps", "0.02", "--workers", "3", "--backend", "threads",
                   "--faults", "fetch:p=1:times=1", "--max-retries", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fault tolerance:" in out

    def test_object_rejects_generalized_only_method(self, capsys):
        rc = main(["join", "--join", "object", "--method", "clone"])
        assert rc == 2
        assert "supports methods" in capsys.readouterr().err

    def test_object_rejects_non_sweep_kernel(self, capsys):
        rc = main(["join", "--join", "object", "--kernel", "grid_hash"])
        assert rc == 2
        assert "plane_sweep" in capsys.readouterr().err

    def test_spark_style_rejects_backend(self, capsys):
        rc = main(["join", "--join", "spark-style", "--backend", "threads"])
        assert rc == 2
        assert "spark-style" in capsys.readouterr().err

    def test_spark_style_rejects_faults(self, capsys):
        rc = main(["join", "--join", "spark-style", "--faults", "kill"])
        assert rc == 2
        assert "fault injection" in capsys.readouterr().err

    def test_spark_style_rejects_spill(self, capsys):
        rc = main(["join", "--join", "spark-style", "--spill", "disk"])
        assert rc == 2
        assert "--spill" in capsys.readouterr().err

    def test_unknown_variant_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--join", "bogus"])

    def test_bad_partition_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--join", "generalized", "--partition", "rtree"])


class TestJoinValidation:
    def test_zero_workers_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--workers", "0"])

    def test_negative_workers_rejected_on_predict(self):
        with pytest.raises(SystemExit):
            main(["predict", "--workers", "-3"])

    def test_zero_task_timeout_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--task-timeout", "0"])

    def test_negative_max_retries_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--max-retries", "-1"])

    def test_bad_fault_spec_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["join", "--faults", "explode:p=1"])
        assert "unknown fault kind" in capsys.readouterr().err

    def test_bad_spill_tier_rejected(self):
        with pytest.raises(SystemExit):
            main(["join", "--spill", "tape"])

    def test_checkpoint_cells_requires_spill(self, capsys):
        rc = main(["join", "--checkpoint-cells"])
        assert rc == 2
        assert "--checkpoint-cells requires" in capsys.readouterr().err

    def test_spill_dir_requires_spill(self, capsys):
        rc = main(["join", "--spill-dir", "/tmp/anywhere"])
        assert rc == 2
        assert "--spill-dir requires" in capsys.readouterr().err

    def test_spill_rejected_for_non_grid_method(self, capsys):
        rc = main(["join", "--method", "naive", "--spill", "memory"])
        assert rc == 2
        assert "grid methods only" in capsys.readouterr().err


class TestExperiment:
    def test_list(self, capsys):
        rc = main(["experiment", "--list"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig13" in out

    def test_run_table1(self, capsys):
        rc = main(["experiment", "table1", "--quick", "--base-n", "1000"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "41" in out and "42" in out

    def test_unknown_experiment(self, capsys):
        rc = main(["experiment", "nope"])
        assert rc == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_missing_name(self, capsys):
        rc = main(["experiment"])
        assert rc == 2


class TestPredict:
    def test_predict_recommends(self, capsys):
        rc = main(["predict", "--base-n", "2000", "--sample-rate", "0.2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "recommended method:" in out
        assert "replicas" in out


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "r1.txt"
        rc = main(["generate", "R1", str(path), "--base-n", "1000"])
        assert rc == 0
        ps = read_points_text(str(path))
        assert len(ps) == 941  # R1's relative cardinality

    def test_bad_dataset(self):
        with pytest.raises(SystemExit):
            main(["generate", "X1", "out.txt"])


class TestReport:
    def test_report_subset(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        rc = main(["report", "--output", str(out), "--quick",
                   "--base-n", "800", "--only", "table1"])
        assert rc == 0
        content = out.read_text()
        assert "# Reproduction report" in content
        assert "## table1" in content and "41" in content

    def test_report_unknown_experiment(self, tmp_path, capsys):
        rc = main(["report", "--output", str(tmp_path / "r.md"),
                   "--only", "bogus"])
        assert rc == 2


def test_parser_subcommands():
    parser = build_parser()
    args = parser.parse_args(["join", "--eps", "0.5"])
    assert args.eps == 0.5
    with pytest.raises(SystemExit):
        parser.parse_args([])


class TestServeValidation:
    """``repro serve`` / ``repro query`` flag validation (no server)."""

    def test_socket_and_port_mutually_exclusive(self, capsys):
        rc = main(["serve", "--socket", "/tmp/x.sock", "--port", "9999"])
        assert rc == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_one_shot_flags_trapped_on_serve(self, capsys):
        for flags in (["--faults", "kill:p=1"], ["--spill", "disk"],
                      ["--checkpoint-cells"], ["--task-timeout", "1"]):
            rc = main(["serve", *flags])
            assert rc == 2
            err = capsys.readouterr().err
            assert "one-shot" in err and "repro join" in err

    def test_one_shot_flags_trapped_on_query(self, capsys):
        rc = main(["query", "--socket", "/tmp/x.sock", "--ping",
                   "--faults", "kill:p=1"])
        assert rc == 2
        assert "one-shot" in capsys.readouterr().err

    def test_bad_port_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--port", "99999"])
        with pytest.raises(SystemExit):
            main(["query", "--port", "0", "--ping"])

    def test_bad_cache_budget_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--cache-budget-mb", "-1"])
        with pytest.raises(SystemExit):
            main(["serve", "--result-cache-mb", "0"])

    def test_bad_register_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--register", "no-equals-sign"])

    def test_query_needs_an_address(self, capsys):
        rc = main(["query", "--ping"])
        assert rc == 2
        assert "exactly one of --socket and --port" in capsys.readouterr().err

    def test_query_needs_an_action(self, capsys):
        rc = main(["query", "--socket", "/tmp/x.sock"])
        assert rc == 2
        assert "nothing to do" in capsys.readouterr().err

    def test_query_join_flags_must_be_complete(self, capsys):
        rc = main(["query", "--socket", "/tmp/x.sock", "--r", "R"])
        assert rc == 2
        assert "given together" in capsys.readouterr().err

    def test_host_requires_port(self, capsys):
        rc = main(["serve", "--host", "0.0.0.0"])
        assert rc == 2
        assert "--host requires --port" in capsys.readouterr().err

    def test_unreachable_server_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["query", "--socket", str(tmp_path / "none.sock"),
                   "--ping"])
        assert rc == 1
        assert "cannot reach the server" in capsys.readouterr().err


class TestServeEndToEnd:
    @pytest.mark.serving
    def test_serve_and_query_over_unix_socket(self, tmp_path, capsys):
        """The CLI round trip: server thread + `repro query` clients."""
        import threading

        from repro.serving import ServerConfig, start_in_thread

        handle = start_in_thread(ServerConfig(backend="serial"))
        try:
            sock = handle.socket_path
            rc = main(["query", "--socket", sock,
                       "--register", "R=R1", "--register", "S=S1",
                       "--base-n", "1000",
                       "--r", "R", "--s", "S", "--eps", "0.02",
                       "--show-pairs", "2"])
            assert rc == 0
            out = capsys.readouterr().out
            assert "registered R" in out and "[cold build]" in out
            rc = main(["query", "--socket", sock, "--r", "R", "--s", "S",
                       "--eps", "0.02"])
            assert rc == 0
            assert "[result cache]" in capsys.readouterr().out
            rc = main(["query", "--socket", sock, "--stats-json"])
            assert rc == 0
            assert '"result_cache_hits": 1' in capsys.readouterr().out
            # --stats renders the sectioned dashboard instead of raw JSON
            rc = main(["query", "--socket", sock, "--stats"])
            assert rc == 0
            rendered = capsys.readouterr().out
            assert "queries" in rendered and "latency" in rendered
            assert '"result_cache_hits"' not in rendered
        finally:
            handle.stop()
