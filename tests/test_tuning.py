"""Tests for the cost-model-driven configuration tuner."""

import pytest

from repro.core.tuning import DEFAULT_FACTORS, tune_join
from repro.data.generators import gaussian_clusters
from repro.joins.distance_join import distance_join
from repro.verify.oracle import kdtree_pairs

EPS = 0.015


@pytest.fixture(scope="module")
def skewed():
    r = gaussian_clusters(6000, seed=101, name="S1")
    s = gaussian_clusters(6000, seed=202, name="S2")
    return r, s


class TestTuner:
    def test_explores_full_space(self, skewed):
        r, s = skewed
        result = tune_join(r, s, EPS)
        adaptive_keys = [k for k in result.predictions if k[0] == "lpib"]
        assert len(adaptive_keys) == len(DEFAULT_FACTORS)
        assert ("eps_grid", 1.0) in result.predictions

    def test_picks_adaptive_method_on_skewed_data(self, skewed):
        r, s = skewed
        result = tune_join(r, s, EPS)
        method, factor = result.best_key
        assert method in ("lpib", "diff")
        assert factor in DEFAULT_FACTORS
        assert result.config.method == method
        assert result.config.resolution_factor == factor

    def test_tuned_config_runs_correctly(self, skewed):
        r, s = skewed
        result = tune_join(r, s, EPS)
        res = distance_join(r, s, result.config)
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), EPS)
        assert res.pairs_set() == truth

    def test_restricted_methods(self, skewed):
        r, s = skewed
        result = tune_join(r, s, EPS, methods=("uni_r", "uni_s"))
        assert result.best_key[0] in ("uni_r", "uni_s")

    def test_table_lists_all_configs(self, skewed):
        r, s = skewed
        result = tune_join(r, s, EPS, methods=("lpib", "uni_r"), factors=(2.0, 3.0))
        table = result.table()
        assert table.count("lpib") == 2
        assert table.count("uni_r") == 2

    def test_tuner_beats_worst_configuration(self, skewed):
        """The tuned choice must be at least as fast (measured) as the
        predicted-worst configuration."""
        r, s = skewed
        result = tune_join(r, s, EPS)
        worst_key = max(result.predictions, key=lambda k: result.predictions[k].exec_time)
        from repro.joins.distance_join import JoinConfig

        worst_method, worst_factor = worst_key
        worst_cfg = JoinConfig(
            eps=EPS,
            method=worst_method,
            resolution_factor=worst_factor if worst_method != "eps_grid" else 2.0,
            collect_pairs=False,
        )
        tuned_cfg = result.config
        tuned = distance_join(r, s, tuned_cfg).metrics.exec_time_model
        worst = distance_join(r, s, worst_cfg).metrics.exec_time_model
        assert tuned <= worst * 1.05
