"""Unit tests for the block store subsystem (repro.engine.blockstore):
spill tiers, LRU eviction, atomic persistence, per-cell checkpoints, and
the cleanup guarantees the fault-tolerance machinery relies on.
"""

import os
import pickle

import numpy as np
import pytest

from repro.engine.blockstore import (
    BlockId,
    BlockStore,
    CheckpointManager,
    SpillConfig,
)


def block_arrays(n, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "cells": rng.integers(0, 100, n).astype(np.int64),
        "points": np.arange(n, dtype=np.int64),
    }


# ----------------------------------------------------------------------
# SpillConfig validation
# ----------------------------------------------------------------------
class TestSpillConfig:
    def test_defaults_disabled(self):
        cfg = SpillConfig()
        assert cfg.tier == "none"
        assert not cfg.enabled

    @pytest.mark.parametrize("tier", ("memory", "disk"))
    def test_real_tiers_enabled(self, tier):
        assert SpillConfig(tier=tier).enabled

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown spill tier"):
            SpillConfig(tier="tape")

    def test_spill_dir_requires_tier(self):
        with pytest.raises(ValueError, match="spill_dir requires"):
            SpillConfig(spill_dir="/tmp/somewhere")

    def test_checkpoints_require_tier(self):
        with pytest.raises(ValueError, match="checkpoint_cells requires"):
            SpillConfig(checkpoint_cells=True)

    def test_negative_memory_limit_rejected(self):
        with pytest.raises(ValueError, match="memory_limit_bytes"):
            SpillConfig(tier="memory", memory_limit_bytes=-1)


# ----------------------------------------------------------------------
# BlockStore
# ----------------------------------------------------------------------
class TestBlockStore:
    def test_rejects_none_tier(self):
        with pytest.raises(ValueError):
            BlockStore("none")

    @pytest.mark.parametrize("tier", ("memory", "disk"))
    def test_put_fetch_roundtrip(self, tier, tmp_path):
        with BlockStore(tier, spill_dir=str(tmp_path)) as store:
            arrays = block_arrays(50)
            bid = BlockId("R", 0, 2)
            store.put(bid, arrays, records=50, logical_bytes=50 * 32)
            meta, back = store.fetch(bid)
            assert meta.records == 50
            assert meta.bytes == 50 * 32
            assert np.array_equal(back["cells"], arrays["cells"])
            assert np.array_equal(back["points"], arrays["points"])
            assert store.blocks_spilled == 1
            assert store.hits == 1 and store.misses == 0
            assert store.fetched_bytes == 50 * 32

    def test_fetch_unknown_block(self, tmp_path):
        with BlockStore("disk", spill_dir=str(tmp_path)) as store:
            assert store.fetch(BlockId("S", 1, 1)) == (None, None)
            assert store.misses == 0  # never-spilled is not a miss

    def test_put_overwrites(self, tmp_path):
        with BlockStore("disk", spill_dir=str(tmp_path)) as store:
            bid = BlockId("R", 0, 0)
            store.put(bid, block_arrays(10, seed=1), records=10, logical_bytes=100)
            store.put(bid, block_arrays(20, seed=2), records=20, logical_bytes=200)
            meta, back = store.fetch(bid)
            assert meta.records == 20
            assert len(back["cells"]) == 20
            assert len(store) == 1

    def test_sources_for(self):
        with BlockStore("memory") as store:
            for side, src, dst in (("R", 0, 1), ("S", 2, 1), ("R", 1, 0)):
                store.put(BlockId(side, src, dst), block_arrays(5), 5, 50)
            assert store.sources_for(1) == [0, 2]
            assert store.sources_for(0) == [1]
            assert store.sources_for(9) == []

    def test_lru_eviction_to_disk(self, tmp_path):
        arrays = block_arrays(100)
        nbytes = sum(a.nbytes for a in arrays.values())
        store = BlockStore(
            "memory", spill_dir=str(tmp_path), memory_limit_bytes=2 * nbytes
        )
        with store:
            ids = [BlockId("R", i, 0) for i in range(3)]
            for bid in ids:
                store.put(bid, block_arrays(100, seed=bid.src), 100, 1000)
            # the limit holds two blocks: the oldest was written out
            assert store.evictions == 1
            assert store.meta(ids[0]).location == "disk"
            assert store.bytes_in_memory <= 2 * nbytes
            # evicted blocks still serve fetches, bit-identical
            meta, back = store.fetch(ids[0])
            assert meta is not None and back is not None
            assert np.array_equal(back["cells"], block_arrays(100, seed=0)["cells"])
            assert store.blocks_dropped == 0

    def test_lru_eviction_drops_without_directory(self):
        arrays = block_arrays(100)
        nbytes = sum(a.nbytes for a in arrays.values())
        with BlockStore("memory", memory_limit_bytes=nbytes) as store:
            a, b = BlockId("R", 0, 0), BlockId("R", 1, 0)
            store.put(a, block_arrays(100), 100, 1000)
            store.put(b, block_arrays(100), 100, 1000)
            assert store.blocks_dropped == 1
            meta, back = store.fetch(a)  # dropped: meta survives, data gone
            assert meta.location == "dropped"
            assert back is None
            assert store.misses == 1

    def test_fetch_lru_touch_protects_hot_block(self):
        arrays = block_arrays(100)
        nbytes = sum(a.nbytes for a in arrays.values())
        with BlockStore("memory", memory_limit_bytes=2 * nbytes) as store:
            a, b = BlockId("R", 0, 0), BlockId("R", 1, 0)
            store.put(a, block_arrays(100), 100, 1000)
            store.put(b, block_arrays(100), 100, 1000)
            store.fetch(a)  # touch: a becomes most-recently-used
            store.put(BlockId("R", 2, 0), block_arrays(100), 100, 1000)
            assert store.meta(a).location == "memory"
            assert store.meta(b).location == "dropped"

    def test_close_removes_files_and_owned_dir(self, tmp_path):
        user_dir = tmp_path / "spill"
        store = BlockStore("disk", spill_dir=str(user_dir))
        store.put(BlockId("R", 0, 0), block_arrays(10), 10, 100)
        assert any(user_dir.iterdir())
        store.close()
        assert not user_dir.exists()  # store created the dir, so it goes

    def test_close_spares_preexisting_dir(self, tmp_path):
        keep = tmp_path / "keep.txt"
        keep.write_text("mine")
        store = BlockStore("disk", spill_dir=str(tmp_path))
        store.put(BlockId("R", 0, 0), block_arrays(10), 10, 100)
        store.close()
        assert list(tmp_path.iterdir()) == [keep]  # only our files removed

    def test_close_idempotent_and_blocks_put(self, tmp_path):
        store = BlockStore("disk", spill_dir=str(tmp_path / "s"))
        store.close()
        store.close()
        with pytest.raises(RuntimeError):
            store.put(BlockId("R", 0, 0), block_arrays(1), 1, 10)

    def test_worker_copy_never_deletes_parent_files(self, tmp_path):
        """A store copy inside a pool worker (simulated by faking the
        recorded pid) must not clean up files under the parent."""
        store = BlockStore("disk", spill_dir=str(tmp_path / "s"))
        store.put(BlockId("R", 0, 0), block_arrays(10), 10, 100)
        clone = pickle.loads(pickle.dumps(store))
        clone._pid = store._pid + 1  # pretend the clone lives elsewhere
        clone.close()
        meta, back = store.fetch(BlockId("R", 0, 0))
        assert back is not None  # the parent's file survived
        store.close()


# ----------------------------------------------------------------------
# CheckpointManager
# ----------------------------------------------------------------------
class TestCheckpointManager:
    @pytest.mark.parametrize("tier", ("memory", "disk"))
    def test_save_load_roundtrip(self, tier, tmp_path):
        with CheckpointManager(tier, str(tmp_path / "ckpt")) as mgr:
            rid = np.array([3, 1, 4], dtype=np.int64)
            sid = np.array([1, 5, 9], dtype=np.int64)
            mgr.save(7, rid, sid, candidates=42, seconds=0.125)
            rec = mgr.load(7)
            assert np.array_equal(rec.rid, rid)
            assert np.array_equal(rec.sid, sid)
            assert rec.candidates == 42
            assert rec.seconds == pytest.approx(0.125)
            assert mgr.load(8) is None
            assert len(mgr) == 1

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            CheckpointManager("tape")

    def test_disk_checkpoints_survive_reopen(self, tmp_path):
        """Disk checkpoints must be readable by another manager on the
        same directory -- that is what makes salvage work across process
        kills."""
        directory = str(tmp_path / "ckpt")
        first = CheckpointManager("disk", directory)
        first.save(0, np.array([1]), np.array([2]), 3, 0.5)
        second = CheckpointManager("disk", directory)
        assert second.load(0) is not None
        first.close()

    def test_memory_tier_detaches_on_pickle(self):
        mgr = CheckpointManager("memory")
        mgr.save(0, np.array([1]), np.array([2]), 3, 0.5)
        clone = pickle.loads(pickle.dumps(mgr))
        assert clone.load(0) is None  # heap partials don't cross processes
        clone.save(1, np.array([1]), np.array([2]), 3, 0.5)
        assert clone.load(1) is None  # detached saves are dropped
        assert mgr.load(0) is not None  # the parent keeps its own
        mgr.close()

    def test_close_removes_created_dir(self, tmp_path):
        directory = tmp_path / "ckpt"
        mgr = CheckpointManager("disk", str(directory))
        mgr.save(0, np.array([1]), np.array([2]), 3, 0.5)
        mgr.close()
        assert not directory.exists()

    def test_close_spares_preexisting_dir(self, tmp_path):
        keep = tmp_path / "keep.txt"
        keep.write_text("mine")
        mgr = CheckpointManager("disk", str(tmp_path))
        mgr.save(0, np.array([1]), np.array([2]), 3, 0.5)
        mgr.close()
        assert list(tmp_path.iterdir()) == [keep]

    def test_half_written_file_tolerated(self, tmp_path):
        directory = tmp_path / "ckpt"
        mgr = CheckpointManager("disk", str(directory))
        with open(os.path.join(str(directory), "cell_00000005.npz"), "wb") as f:
            f.write(b"not an npz")  # a kill mid-write leaves garbage
        assert mgr.load(5) is None
        mgr.close()


# ----------------------------------------------------------------------
# disk-tier corruption: an unreadable spill file is a typed, healable
# loss (BlockLost), never a crash and never a silent wrong answer
# ----------------------------------------------------------------------
class TestBlockLoss:
    @staticmethod
    def damage_file(path, mode):
        if mode == "truncated":
            with open(path, "r+b") as fh:
                fh.truncate(7)  # a kill mid-write leaves a partial zip
        elif mode == "garbage":
            with open(path, "wb") as fh:
                fh.write(b"this is not an npz archive")
        else:  # deleted
            os.unlink(path)

    @pytest.mark.parametrize("damage", ("truncated", "garbage", "deleted"))
    def test_unreadable_block_raises_blocklost(self, tmp_path, damage):
        from repro.engine.blockstore import BlockLost

        with BlockStore("disk", spill_dir=str(tmp_path)) as store:
            bid = BlockId("R", 0, 1)
            arrays = block_arrays(30)
            store.put(bid, arrays, records=30, logical_bytes=30 * 32)
            path = tmp_path / bid.filename()
            assert path.exists()
            self.damage_file(str(path), damage)

            with pytest.raises(BlockLost, match="unreadable") as exc:
                store.fetch(bid)
            assert exc.value.block_id == bid
            assert store.blocks_dropped == 1
            meta = store.meta(bid)
            assert meta.location == "dropped"
            # a later fetch is a plain miss (meta, None), not a re-raise
            meta_again, back = store.fetch(bid)
            assert meta_again is meta
            assert back is None

    def test_healthy_blocks_unaffected_by_sibling_loss(self, tmp_path):
        from repro.engine.blockstore import BlockLost

        with BlockStore("disk", spill_dir=str(tmp_path)) as store:
            bad, good = BlockId("R", 0, 1), BlockId("S", 0, 1)
            store.put(bad, block_arrays(10), records=10, logical_bytes=320)
            store.put(good, block_arrays(20, seed=1), records=20,
                      logical_bytes=640)
            self.damage_file(str(tmp_path / bad.filename()), "garbage")
            with pytest.raises(BlockLost):
                store.fetch(bad)
            meta, back = store.fetch(good)
            assert meta.location == "disk"
            assert np.array_equal(back["points"],
                                  block_arrays(20, seed=1)["points"])

    def test_pipeline_heals_corrupt_block_via_refetch(self, tmp_path,
                                                      monkeypatch):
        """End to end: a fetch fault forces a block refetch; the spilled
        file has been corrupted in the meantime; recovery must fall back
        to regenerating the records and still return the exact answer."""
        from repro.data.generators import gaussian_clusters
        from repro.engine.blockstore.store import BlockStore as StoreCls
        from repro.joins.distance_join import JoinConfig, distance_join

        r = gaussian_clusters(420, seed=51, name="R")
        s = gaussian_clusters(380, seed=52, name="S")
        base = dict(eps=0.02, method="lpib", num_workers=3,
                    local_kernel="plane_sweep")
        clean = distance_join(r, s, JoinConfig(**base))

        sabotaged = []
        orig_fetch = StoreCls.fetch

        def sabotaging_fetch(self, block_id):
            # corrupt the file under the store's feet on the first
            # disk-resident fetch (i.e. the first recovery refetch)
            meta = self.meta(block_id)
            if not sabotaged and meta is not None and meta.location == "disk":
                path = os.path.join(self._directory(), block_id.filename())
                TestBlockLoss.damage_file(path, "truncated")
                sabotaged.append(block_id)
            return orig_fetch(self, block_id)

        monkeypatch.setattr(StoreCls, "fetch", sabotaging_fetch)
        spill_dir = tmp_path / "spill"
        res = distance_join(r, s, JoinConfig(
            **base, execution_backend="threads", executor_workers=2,
            faults="fetch:p=1:times=1", max_retries=3,
            spill="disk", spill_dir=str(spill_dir), checkpoint_cells=True,
        ))
        assert sabotaged, "no refetch ever touched a disk block"
        assert np.array_equal(res.r_ids, clean.r_ids)
        assert np.array_equal(res.s_ids, clean.s_ids)
        assert res.metrics.blocks_refetched > 0
        assert not spill_dir.exists() or list(spill_dir.iterdir()) == []
