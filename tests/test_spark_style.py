"""The RDD-layer Algorithm 5 must agree with the vectorized driver."""

import pytest

from repro.data.generators import gaussian_clusters
from repro.data.io import write_points_text
from repro.engine.cluster import SimCluster
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.spark_style import spark_style_join
from repro.verify.oracle import kdtree_pairs

EPS = 0.03


@pytest.fixture(scope="module")
def data(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("points")
    r = gaussian_clusters(500, seed=61, name="R")
    s = gaussian_clusters(500, seed=62, name="S")
    path_r, path_s = tmp / "r.txt", tmp / "s.txt"
    write_points_text(r, str(path_r))
    write_points_text(s, str(path_s))
    mbr = r.mbr().union(s.mbr())
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), EPS)
    return r, s, str(path_r), str(path_s), mbr, truth


@pytest.mark.parametrize("method", ["lpib", "diff", "uni_r", "uni_s"])
def test_pipeline_matches_oracle(data, method):
    _r, _s, path_r, path_s, mbr, truth = data
    result = spark_style_join(
        path_r, path_s, mbr, EPS, SimCluster(4), method=method, sample_rate=0.2
    )
    assert result.pairs == truth
    assert result.produced == len(result.pairs)  # duplicate-free


def test_pipeline_matches_vectorized_driver(data):
    r, s, path_r, path_s, mbr, truth = data
    pipeline = spark_style_join(
        path_r, path_s, mbr, EPS, SimCluster(4), method="uni_r"
    )
    driver = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r", mbr=mbr))
    assert pipeline.pairs == driver.pairs_set() == truth


def test_pipeline_accounts_shuffle(data):
    _r, _s, path_r, path_s, mbr, _truth = data
    result = spark_style_join(path_r, path_s, mbr, EPS, SimCluster(4), method="lpib")
    assert result.shuffle.records >= 1000  # both inputs shuffled at least once
    assert result.shuffle.bytes > 0


def test_uniform_policy_through_graph_matches_universal(data):
    """UniformPolicy via the agreement framework equals PBSM's assigner."""
    _r, _s, path_r, path_s, mbr, truth = data
    graph_based = spark_style_join(
        path_r, path_s, mbr, EPS, SimCluster(4), method="uniform_policy_r"
    )
    universal = spark_style_join(
        path_r, path_s, mbr, EPS, SimCluster(4), method="uni_r"
    )
    assert graph_based.pairs == universal.pairs == truth


def test_unknown_method_rejected(data):
    _r, _s, path_r, path_s, mbr, _truth = data
    with pytest.raises(ValueError):
        spark_style_join(path_r, path_s, mbr, EPS, SimCluster(2), method="nope")
