"""Exhaustive point-level verification of the adaptive-replication core.

These are the arbiters for Theorems/Lemmas 4.5-4.8 and Algorithms 1-4: on
small grids we enumerate agreement-type assignments and verify -- against
dense near-corner point clouds -- that the marked graph yields a join
partitioning that is simultaneously *correct* (no pair lost) and
*duplicate-free* (no pair reported twice).
"""

import itertools
import random

import pytest

from repro.agreements.graph import AgreementGraph
from repro.agreements.marking import generate_duplicate_free_graph
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.replication.assign import AdaptiveAssigner
from repro.verify.oracle import kdtree_pairs, verify_assignment

EPS = 1.0


def dense_points(x_hi, y_hi, step=0.5, offset=(0.0, 0.0)):
    pts = []
    pid = 0
    x = 0.3 + offset[0]
    while x <= x_hi:
        y = 0.3 + offset[1]
        while y <= y_hi:
            pts.append((pid, round(x, 6), round(y, 6)))
            pid += 1
            y += step
        x += step
    return pts


@pytest.fixture(scope="module")
def grid_2x2():
    return Grid(MBR(0, 0, 5, 5), EPS)


@pytest.fixture(scope="module")
def cloud_2x2():
    r_pts = dense_points(4.7, 4.7)
    s_pts = dense_points(4.7, 4.7, offset=(0.09, 0.07))
    return r_pts, s_pts, kdtree_pairs(r_pts, s_pts, EPS)


def test_all_64_agreement_instances_on_one_quartet(grid_2x2, cloud_2x2):
    r_pts, s_pts, expected = cloud_2x2
    pairs = [frozenset(p[:2]) for p in grid_2x2.adjacent_pairs()]
    assert len(pairs) == 6
    for combo in itertools.product([Side.R, Side.S], repeat=6):
        graph = AgreementGraph(grid_2x2, dict(zip(pairs, combo)))
        generate_duplicate_free_graph(graph)
        res = verify_assignment(
            AdaptiveAssigner(grid_2x2, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.ok, (combo, res.describe())


def test_random_weights_change_marking_order_not_properties(grid_2x2, cloud_2x2):
    """Algorithm 1's outcome depends on edge weights; every outcome must
    still be correct and duplicate-free."""
    r_pts, s_pts, expected = cloud_2x2
    pairs = [frozenset(p[:2]) for p in grid_2x2.adjacent_pairs()]
    rng = random.Random(42)
    for _ in range(40):
        combo = [rng.choice([Side.R, Side.S]) for _ in pairs]
        graph = AgreementGraph(grid_2x2, dict(zip(pairs, combo)))
        for sub in graph.quartets.values():
            for e in sub.edges():
                e.weight = rng.randrange(1000)
        generate_duplicate_free_graph(graph)
        res = verify_assignment(
            AdaptiveAssigner(grid_2x2, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.ok, (combo, res.describe())


def test_cross_quartet_interactions_on_3x2_grid():
    """Two quartets share a side pair (two independent edge copies); a
    random sample of the 2^11 agreement instances must stay correct and
    duplicate-free, including supplementary areas that reach across."""
    grid = Grid(MBR(0, 0, 7.5, 5), EPS)
    assert (grid.nx, grid.ny) == (3, 2)
    pairs = [frozenset(p[:2]) for p in grid.adjacent_pairs()]
    assert len(pairs) == 11
    r_pts = dense_points(7.2, 4.7)
    s_pts = dense_points(7.2, 4.7, offset=(0.09, 0.07))
    expected = kdtree_pairs(r_pts, s_pts, EPS)

    rng = random.Random(7)
    combos = [
        tuple(rng.choice([Side.R, Side.S]) for _ in pairs) for _ in range(150)
    ]
    # always include the two uniform instances and an alternating one
    combos += [
        tuple([Side.R] * 11),
        tuple([Side.S] * 11),
        tuple(Side.R if i % 2 else Side.S for i in range(11)),
    ]
    for combo in combos:
        graph = AgreementGraph(grid, dict(zip(pairs, combo)))
        for sub in graph.quartets.values():
            for e in sub.edges():
                e.weight = rng.randrange(1000)
        generate_duplicate_free_graph(graph)
        res = verify_assignment(
            AdaptiveAssigner(grid, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.ok, (combo, res.describe())


def test_narrow_cells_supplementary_overlap():
    """Cell sides barely above 2 eps maximize area overlaps (supplementary
    areas spanning most of a cell)."""
    grid = Grid(MBR(0, 0, 4.2, 4.2), EPS)
    assert grid.cell_w == pytest.approx(2.1)
    pairs = [frozenset(p[:2]) for p in grid.adjacent_pairs()]
    r_pts = dense_points(4.0, 4.0, step=0.4)
    s_pts = dense_points(4.0, 4.0, step=0.4, offset=(0.06, 0.11))
    expected = kdtree_pairs(r_pts, s_pts, EPS)
    for combo in itertools.product([Side.R, Side.S], repeat=len(pairs)):
        graph = AgreementGraph(grid, dict(zip(pairs, combo)))
        generate_duplicate_free_graph(graph)
        res = verify_assignment(
            AdaptiveAssigner(grid, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.ok, (combo, res.describe())


def test_interior_cell_on_3x3_grid():
    """A fully surrounded cell participates in four quartets at once; its
    points can replicate across any of its eight borders/corners."""
    grid = Grid(MBR(0, 0, 7.5, 7.5), EPS)
    assert (grid.nx, grid.ny) == (3, 3)
    pairs = [frozenset(p[:2]) for p in grid.adjacent_pairs()]
    assert len(pairs) == 20

    # concentrate points around the centre cell's borders and corners
    r_pts = dense_points(7.2, 7.2, step=0.55)
    s_pts = dense_points(7.2, 7.2, step=0.55, offset=(0.08, 0.06))
    expected = kdtree_pairs(r_pts, s_pts, EPS)

    rng = random.Random(19)
    combos = [
        tuple(rng.choice([Side.R, Side.S]) for _ in pairs) for _ in range(45)
    ]
    combos.append(tuple([Side.R] * 20))
    combos.append(tuple(Side.R if i % 2 else Side.S for i in range(20)))
    for combo in combos:
        graph = AgreementGraph(grid, dict(zip(pairs, combo)))
        for sub in graph.quartets.values():
            for e in sub.edges():
                e.weight = rng.randrange(100)
        generate_duplicate_free_graph(graph)
        res = verify_assignment(
            AdaptiveAssigner(grid, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.ok, (combo, res.describe())


def test_unmarked_mixed_graph_is_correct_but_duplicates(grid_2x2, cloud_2x2):
    """Corollary 4.6 and Lemma 4.8: without marking, correctness holds but
    the duplicate-free property is lost for mixed instances."""
    r_pts, s_pts, expected = cloud_2x2
    pairs = [frozenset(p[:2]) for p in grid_2x2.adjacent_pairs()]
    saw_duplicates = False
    for combo in itertools.product([Side.R, Side.S], repeat=6):
        graph = AgreementGraph(grid_2x2, dict(zip(pairs, combo)))
        # no marking pass
        res = verify_assignment(
            AdaptiveAssigner(grid_2x2, graph), r_pts, s_pts, EPS, expected=expected
        )
        assert res.correct, (combo, res.describe())
        if not res.duplicate_free:
            saw_duplicates = True
    assert saw_duplicates, "expected duplicates for some mixed instance"
