"""Unit tests for universal (PBSM) replication."""

import numpy as np
import pytest

from repro.agreements.marking import generate_duplicate_free_graph
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.replication.assign import AdaptiveAssigner
from repro.replication.pbsm import UniversalAssigner, replication_targets_universal
from tests.conftest import make_graph


class TestTargets:
    def test_interior_point_no_targets(self, grid4x4):
        assert replication_targets_universal(grid4x4, 3.75, 3.75) == ()

    def test_border_point_one_target(self, grid4x4):
        targets = replication_targets_universal(grid4x4, 2.4, 1.0)
        assert targets == (grid4x4.cell_id(1, 0),)

    def test_corner_point_three_targets(self, grid4x4):
        targets = replication_targets_universal(grid4x4, 2.4, 2.4)
        assert set(targets) == {
            grid4x4.cell_id(1, 0),
            grid4x4.cell_id(0, 1),
            grid4x4.cell_id(1, 1),
        }

    def test_grid_boundary_no_phantom_cells(self, grid4x4):
        assert replication_targets_universal(grid4x4, 0.1, 0.1) == ()

    def test_eps_resolution_grid_wider_window(self):
        g = Grid(MBR(0, 0, 10, 10), eps=1.0, resolution_factor=1.0)
        assert g.cell_w < 2.0
        # a central point reaches beyond the 8-neighbourhood
        targets = replication_targets_universal(g, 5.0, 5.0)
        assert len(targets) > 3


class TestUniversalAssigner:
    def test_only_replicated_side_replicates(self, grid4x4):
        ua = UniversalAssigner(grid4x4, Side.R)
        assert len(ua.assign(2.4, 2.4, Side.R)) == 4
        assert len(ua.assign(2.4, 2.4, Side.S)) == 1

    def test_equivalent_to_uniform_agreement_graph(self, grid4x4):
        """PBSM is the graph-of-agreements instance with all-identical
        agreements (Sect. 4.4): both assigners must agree point-wise."""
        graph = make_graph(grid4x4, Side.R)
        generate_duplicate_free_graph(graph)
        adaptive = AdaptiveAssigner(grid4x4, graph)
        universal = UniversalAssigner(grid4x4, Side.R)
        rng = np.random.default_rng(17)
        for x, y in rng.uniform(0, 10, size=(600, 2)):
            for side in Side:
                assert set(adaptive.assign(float(x), float(y), side)) == set(
                    universal.assign(float(x), float(y), side)
                ), (x, y, side)

    def test_batch_matches_per_point_2eps(self, grid4x4):
        ua = UniversalAssigner(grid4x4, Side.S)
        rng = np.random.default_rng(3)
        xs = rng.uniform(0, 10, 300)
        ys = rng.uniform(0, 10, 300)
        for side in Side:
            cells, idxs = ua.assign_batch(xs, ys, side)
            got = {}
            for c, i in zip(cells.tolist(), idxs.tolist()):
                got.setdefault(i, set()).add(c)
            for i in range(300):
                assert got[i] == set(ua.assign(float(xs[i]), float(ys[i]), side))

    def test_batch_matches_per_point_eps_grid(self):
        g = Grid(MBR(0, 0, 10, 10), eps=1.0, resolution_factor=1.0)
        ua = UniversalAssigner(g, Side.R)
        rng = np.random.default_rng(4)
        xs = rng.uniform(0, 10, 200)
        ys = rng.uniform(0, 10, 200)
        cells, idxs = ua.assign_batch(xs, ys, Side.R)
        got = {}
        for c, i in zip(cells.tolist(), idxs.tolist()):
            got.setdefault(i, set()).add(c)
        for i in range(200):
            assert got[i] == set(ua.assign(float(xs[i]), float(ys[i]), Side.R))

    def test_all_targets_within_eps(self, grid4x4):
        ua = UniversalAssigner(grid4x4, Side.R)
        rng = np.random.default_rng(8)
        for x, y in rng.uniform(0, 10, size=(300, 2)):
            native, *rest = ua.assign(float(x), float(y), Side.R)
            for cell in rest:
                mbr = grid4x4.cell_mbr(*grid4x4.cell_pos(cell))
                assert mbr.mindist_point(float(x), float(y)) <= grid4x4.eps + 1e-12
