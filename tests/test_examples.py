"""Smoke tests: the example scripts must run end to end.

Each example is executed in a subprocess (fresh interpreter, like a
user would run it); the faster ones run here, the heavier ones are
covered by their own library-level tests.
"""

import subprocess
import sys

import pytest

FAST_EXAMPLES = [
    "examples/quickstart.py",
    "examples/spark_style_pipeline.py",
    "examples/agreement_graph_tour.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, script],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), script


def test_quickstart_reports_gain():
    proc = subprocess.run(
        [sys.executable, "examples/quickstart.py"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "fewer replicated objects" in proc.stdout


def test_pipeline_matches_oracle_line():
    proc = subprocess.run(
        [sys.executable, "examples/spark_style_pipeline.py"],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert "matches centralized KD-tree oracle: True" in proc.stdout
