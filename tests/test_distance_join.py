"""Integration tests for the parallel distance-join driver."""

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters, uniform
from repro.geometry.mbr import MBR
from repro.joins.distance_join import (
    GRID_METHODS,
    JoinConfig,
    distance_join,
    paper_default_config,
)
from repro.verify.oracle import kdtree_pairs

EPS = 0.02


@pytest.fixture(scope="module")
def inputs():
    r = gaussian_clusters(1200, seed=31, name="R")
    s = gaussian_clusters(1200, seed=32, name="S")
    truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), EPS)
    return r, s, truth


class TestCorrectness:
    @pytest.mark.parametrize("method", GRID_METHODS)
    def test_method_matches_oracle(self, inputs, method):
        r, s, truth = inputs
        res = distance_join(r, s, JoinConfig(eps=EPS, method=method, seed=3))
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # duplicate-free

    @pytest.mark.parametrize("method", ["lpib", "diff"])
    def test_dedup_variant_matches_oracle(self, inputs, method):
        r, s, truth = inputs
        res = distance_join(
            r, s, JoinConfig(eps=EPS, method=method, duplicate_free=False)
        )
        assert res.pairs_set() == truth
        assert len(res) == len(truth)  # distinct() removed duplicates

    def test_hash_and_lpt_same_result(self, inputs):
        r, s, truth = inputs
        for assignment in ("lpt", "hash"):
            res = distance_join(
                r, s, JoinConfig(eps=EPS, method="lpib", cell_assignment=assignment)
            )
            assert res.pairs_set() == truth

    @pytest.mark.parametrize("kernel", ["plane_sweep", "nested_loop", "grid_hash"])
    def test_kernels_interchangeable(self, inputs, kernel):
        r, s, truth = inputs
        res = distance_join(
            r, s, JoinConfig(eps=EPS, method="lpib", local_kernel=kernel)
        )
        assert res.pairs_set() == truth

    def test_worker_count_does_not_change_result(self, inputs):
        r, s, truth = inputs
        for workers in (1, 4, 12):
            res = distance_join(
                r, s, JoinConfig(eps=EPS, method="diff", num_workers=workers)
            )
            assert res.pairs_set() == truth

    def test_coarser_resolution_same_result(self, inputs):
        r, s, truth = inputs
        for factor in (2.0, 3.0, 5.0):
            res = distance_join(
                r, s, JoinConfig(eps=EPS, method="lpib", resolution_factor=factor)
            )
            assert res.pairs_set() == truth


class TestMetrics:
    def test_shuffle_records_account_for_replication(self, inputs):
        r, s, _ = inputs
        res = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r"))
        m = res.metrics
        assert m.shuffle_records == len(r) + len(s) + m.replicated_total
        assert m.replicated_s == 0  # only R is replicated under UNI(R)

    def test_adaptive_replicates_less_than_universal(self, inputs):
        r, s, _ = inputs
        adaptive = distance_join(r, s, JoinConfig(eps=EPS, method="lpib")).metrics
        uni_r = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r")).metrics
        uni_s = distance_join(r, s, JoinConfig(eps=EPS, method="uni_s")).metrics
        assert adaptive.replicated_total <= min(
            uni_r.replicated_total, uni_s.replicated_total
        )

    def test_eps_grid_has_highest_replication(self, inputs):
        r, s, _ = inputs
        eps_grid = distance_join(r, s, JoinConfig(eps=EPS, method="eps_grid")).metrics
        uni_r = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r")).metrics
        assert eps_grid.replicated_total > uni_r.replicated_total

    def test_remote_bytes_bounded_by_total(self, inputs):
        r, s, _ = inputs
        m = distance_join(r, s, JoinConfig(eps=EPS, method="lpib")).metrics
        assert 0 < m.remote_bytes <= m.shuffle_bytes

    def test_payload_grows_shuffle_volume(self, inputs):
        r, s, _ = inputs
        small = distance_join(r, s, JoinConfig(eps=EPS, method="uni_r")).metrics
        big = distance_join(
            r.with_payload(128), s.with_payload(128), JoinConfig(eps=EPS, method="uni_r")
        ).metrics
        assert big.shuffle_bytes > small.shuffle_bytes
        assert big.results == small.results

    def test_time_model_positive_and_split(self, inputs):
        r, s, _ = inputs
        m = distance_join(r, s, JoinConfig(eps=EPS, method="lpib")).metrics
        assert m.construction_time_model > 0
        assert m.join_time_model > 0
        assert m.exec_time_model == pytest.approx(
            m.construction_time_model + m.join_time_model
        )

    def test_worker_join_costs_length(self, inputs):
        r, s, _ = inputs
        m = distance_join(r, s, JoinConfig(eps=EPS, method="lpib", num_workers=7)).metrics
        assert len(m.worker_join_costs) == 7

    def test_dedup_variant_reports_extra_cost(self, inputs):
        r, s, _ = inputs
        m = distance_join(
            r, s, JoinConfig(eps=EPS, method="lpib", duplicate_free=False)
        ).metrics
        assert "dedup_time_model" in m.extra

    def test_marking_stats_exposed_for_adaptive(self, inputs):
        r, s, _ = inputs
        m = distance_join(r, s, JoinConfig(eps=EPS, method="diff")).metrics
        assert "agreements_r" in m.extra
        assert "agreements_s" in m.extra
        assert "marked_edges" in m.extra


class TestConfig:
    def test_default_partitions_paper_value(self):
        assert paper_default_config().resolved_partitions() == 96

    def test_invalid_method(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            distance_join(r, s, JoinConfig(eps=EPS, method="bogus"))

    def test_invalid_eps(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            distance_join(r, s, JoinConfig(eps=0.0))

    def test_invalid_assignment(self, inputs):
        r, s, _ = inputs
        with pytest.raises(ValueError):
            distance_join(r, s, JoinConfig(eps=EPS, cell_assignment="bogus"))

    def test_explicit_mbr(self, inputs):
        r, s, truth = inputs
        res = distance_join(
            r, s, JoinConfig(eps=EPS, method="lpib", mbr=MBR(0, 0, 1, 1))
        )
        assert res.pairs_set() == truth


class TestDegenerate:
    def test_uniform_data(self):
        r = uniform(400, seed=5, name="u1")
        s = uniform(400, seed=6, name="u2")
        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), 0.05)
        for method in GRID_METHODS:
            res = distance_join(r, s, JoinConfig(eps=0.05, method=method))
            assert res.pairs_set() == truth

    def test_tiny_inputs(self):
        from repro.data.pointset import PointSet

        r = PointSet(np.array([0.5]), np.array([0.5]), name="one")
        s = PointSet(np.array([0.5, 0.9]), np.array([0.5, 0.9]), name="two")
        res = distance_join(r, s, JoinConfig(eps=0.1, method="lpib"))
        assert res.pairs_set() == {(0, 0)}

    def test_no_matches(self):
        from repro.data.pointset import PointSet

        r = PointSet(np.array([0.1]), np.array([0.1]), name="far")
        s = PointSet(np.array([0.9]), np.array([0.9]), name="away")
        res = distance_join(r, s, JoinConfig(eps=0.05, method="uni_r"))
        assert len(res) == 0
        assert res.metrics.results == 0
