"""Cross-driver equivalence matrix.

Two guarantees, both against ``tests/golden/driver_goldens.json`` which
was captured from the **pre-refactor** drivers (PR 3 tree):

1. *Golden matrix* -- every driver, rewritten as a composition of
   :mod:`repro.joins.pipeline` stages, still produces bit-identical
   result sets and integer metrics.  The point distance join must also
   keep its modelled clocks to the last bit (full-precision ``repr``).

2. *Execution equivalence* -- the object and generalized joins, which
   gained the execution surface in this refactor, return pair-sets
   bit-identical to a fault-free serial run when executed on threads or
   processes with fault injection, disk spill and cell checkpointing.
"""

import hashlib
import json
import os

import pytest

from repro.data.generators import gaussian_clusters, real_like
from repro.data.object_generators import (
    random_boxes,
    random_polygons,
    random_polylines,
)
from repro.geometry.point import Side
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)
from repro.joins.object_join import (
    ObjectSet,
    object_distance_join,
    object_intersection_join,
)

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "golden", "driver_goldens.json"
)

with open(GOLDEN_PATH) as f:
    GOLDENS = json.load(f)


def pairs_digest(pairs) -> str:
    """Order-independent digest (mirrors scripts/capture_driver_goldens.py)."""
    blob = ";".join(f"{a},{b}" for a, b in sorted(pairs)).encode()
    return hashlib.sha256(blob).hexdigest()


def core_metrics(m) -> dict:
    return {
        "replicated_r": int(m.replicated_r),
        "replicated_s": int(m.replicated_s),
        "shuffle_records": int(m.shuffle_records),
        "shuffle_bytes": int(m.shuffle_bytes),
        "remote_records": int(m.remote_records),
        "remote_bytes": int(m.remote_bytes),
        "candidate_pairs": int(m.candidate_pairs),
        "results": int(m.results),
        "grid_cells": int(m.grid_cells),
    }


# ----------------------------------------------------------------------
# golden matrix: refactored drivers == pre-refactor drivers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def distance_inputs():
    return (
        gaussian_clusters(600, seed=1, name="R"),
        gaussian_clusters(550, seed=2, name="S"),
    )


@pytest.mark.parametrize(
    "row", GOLDENS["distance"],
    ids=[f"{r['method']}-{r['cell_assignment']}" for r in GOLDENS["distance"]],
)
def test_distance_matches_pre_refactor_golden(distance_inputs, row):
    r, s = distance_inputs
    cfg = JoinConfig(
        eps=0.02, method=row["method"], num_workers=4,
        cell_assignment=row["cell_assignment"], seed=0,
    )
    res = distance_join(r, s, cfg)
    assert pairs_digest(res.pairs_set()) == row["pairs_sha256"]
    assert core_metrics(res.metrics) == row["metrics"]
    # modelled clocks must not move at all: repr pins every bit
    assert repr(res.metrics.construction_time_model) == (
        row["construction_time_model"]
    )
    assert repr(res.metrics.join_time_model) == row["join_time_model"]


@pytest.fixture(scope="module")
def object_inputs():
    return {
        "boxes_r": ObjectSet(random_boxes(300, Side.R, seed=11), "R"),
        "boxes_s": ObjectSet(random_boxes(300, Side.S, seed=22), "S"),
        "polys": ObjectSet(random_polygons(250, Side.R, seed=31), "P"),
        "lines": ObjectSet(random_polylines(250, Side.S, seed=42), "L"),
    }


@pytest.mark.parametrize(
    "row", GOLDENS["object"],
    ids=[f"{r['workload']}-{r['method']}" for r in GOLDENS["object"]],
)
def test_object_matches_pre_refactor_golden(object_inputs, row):
    if row["workload"] == "boxes-distance":
        res = object_distance_join(
            object_inputs["boxes_r"], object_inputs["boxes_s"], 0.01,
            method=row["method"],
        )
    else:
        res = object_intersection_join(
            object_inputs["polys"], object_inputs["lines"],
            method=row["method"],
        )
    assert pairs_digest(res.pairs_set()) == row["pairs_sha256"]
    assert core_metrics(res.metrics) == row["metrics"]


@pytest.fixture(scope="module")
def generalized_inputs():
    return (
        gaussian_clusters(800, seed=101, name="R"),
        real_like(800, seed=11, name="S"),
    )


@pytest.mark.parametrize(
    "row", GOLDENS["generalized"],
    ids=[f"{r['partition']}-{r['method']}" for r in GOLDENS["generalized"]],
)
def test_generalized_matches_pre_refactor_golden(generalized_inputs, row):
    r, s = generalized_inputs
    cfg = GeneralizedJoinConfig(
        eps=0.02, partition=row["partition"], method=row["method"],
        num_workers=4,
    )
    res = generalized_distance_join(r, s, cfg)
    assert pairs_digest(res.pairs_set()) == row["pairs_sha256"]
    assert core_metrics(res.metrics) == row["metrics"]


@pytest.mark.parametrize(
    "row", GOLDENS["spark_style"],
    ids=[r["method"] for r in GOLDENS["spark_style"]],
)
def test_spark_style_matches_pre_refactor_golden(tmp_path, row):
    from repro.data.io import write_points_text
    from repro.engine.cluster import SimCluster
    from repro.joins.spark_style import spark_style_join

    r = gaussian_clusters(500, seed=61, name="R")
    s = gaussian_clusters(500, seed=62, name="S")
    path_r, path_s = str(tmp_path / "r.txt"), str(tmp_path / "s.txt")
    write_points_text(r, path_r)
    write_points_text(s, path_s)
    result = spark_style_join(
        path_r, path_s, r.mbr().union(s.mbr()), 0.03, SimCluster(4),
        method=row["method"], sample_rate=0.2,
    )
    assert pairs_digest(result.pairs) == row["pairs_sha256"]
    assert int(result.produced) == row["produced"]
    assert int(result.shuffle.records) == row["shuffle_records"]
    assert int(result.shuffle.bytes) == row["shuffle_bytes"]


# ----------------------------------------------------------------------
# execution equivalence: object + generalized joins under real backends,
# faults, spill and checkpointing return the serial fault-free pair-set
# ----------------------------------------------------------------------
CHAOS_OPTIONS = dict(
    faults="kill:p=1:times=1",
    max_retries=3,
    executor_workers=2,
)


@pytest.fixture(scope="module")
def small_boxes():
    return (
        ObjectSet(random_boxes(200, Side.R, seed=11), "R"),
        ObjectSet(random_boxes(200, Side.S, seed=22), "S"),
    )


@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_object_join_backends_bit_identical(tmp_path, small_boxes, backend):
    r, s = small_boxes
    reference = object_distance_join(r, s, 0.01, num_workers=4)
    assert len(reference) > 0
    res = object_distance_join(
        r, s, 0.01, num_workers=4, execution_backend=backend,
        spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
        **CHAOS_OPTIONS,
    )
    assert res.pairs_set() == reference.pairs_set()
    assert res.metrics.fault_events > 0, "the injected fault never fired"
    assert res.metrics.blocks_spilled > 0
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


@pytest.fixture(scope="module")
def generalized_small_inputs():
    return (
        gaussian_clusters(300, seed=101, name="R"),
        real_like(300, seed=11, name="S"),
    )


@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_generalized_join_backends_bit_identical(
    tmp_path, generalized_small_inputs, backend
):
    r, s = generalized_small_inputs
    base = dict(eps=0.02, partition="quadtree", method="lpib", num_workers=4)
    reference = generalized_distance_join(r, s, GeneralizedJoinConfig(**base))
    assert len(reference) > 0
    res = generalized_distance_join(
        r, s,
        GeneralizedJoinConfig(
            **base, execution_backend=backend,
            spill="disk", spill_dir=str(tmp_path), checkpoint_cells=True,
            **CHAOS_OPTIONS,
        ),
    )
    assert res.pairs_set() == reference.pairs_set()
    assert res.metrics.fault_events > 0, "the injected fault never fired"
    assert res.metrics.blocks_spilled > 0
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


def test_object_intersection_runs_on_threads(small_boxes):
    """The intersection predicate rides the same staged pipeline."""
    r, s = small_boxes
    reference = object_intersection_join(r, s, num_workers=4)
    res = object_intersection_join(
        r, s, num_workers=4, execution_backend="threads", executor_workers=2,
    )
    assert res.pairs_set() == reference.pairs_set()
    assert res.metrics.execution_backend == "threads"
