"""Unit and property tests for segment geometry."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.segment import (
    point_segment_distance_sq,
    segment_segment_distance_sq,
    segments_intersect,
)

coord = st.floats(-100, 100, allow_nan=False)


class TestPointSegment:
    def test_projection_inside(self):
        assert point_segment_distance_sq(0, 1, -1, 0, 1, 0) == pytest.approx(1.0)

    def test_clamped_to_endpoint(self):
        assert point_segment_distance_sq(5, 0, 0, 0, 1, 0) == pytest.approx(16.0)

    def test_on_segment_zero(self):
        assert point_segment_distance_sq(0.5, 0, 0, 0, 1, 0) == 0.0

    def test_degenerate_segment(self):
        assert point_segment_distance_sq(3, 4, 0, 0, 0, 0) == pytest.approx(25.0)

    @given(coord, coord, coord, coord, coord, coord)
    def test_non_negative_and_bounded_by_endpoints(self, px, py, ax, ay, bx, by):
        d = point_segment_distance_sq(px, py, ax, ay, bx, by)
        to_a = (px - ax) ** 2 + (py - ay) ** 2
        to_b = (px - bx) ** 2 + (py - by) ** 2
        assert 0 <= d <= min(to_a, to_b) + 1e-6


class TestSegmentsIntersect:
    def test_crossing(self):
        assert segments_intersect(0, 0, 2, 2, 0, 2, 2, 0)

    def test_parallel_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 0, 1, 1, 1)

    def test_touching_endpoint(self):
        assert segments_intersect(0, 0, 1, 1, 1, 1, 2, 0)

    def test_collinear_overlapping(self):
        assert segments_intersect(0, 0, 2, 0, 1, 0, 3, 0)

    def test_collinear_disjoint(self):
        assert not segments_intersect(0, 0, 1, 0, 2, 0, 3, 0)

    def test_t_junction(self):
        assert segments_intersect(0, 0, 2, 0, 1, -1, 1, 0)

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    def test_symmetric(self, ax, ay, bx, by, cx, cy, dx, dy):
        assert segments_intersect(ax, ay, bx, by, cx, cy, dx, dy) == (
            segments_intersect(cx, cy, dx, dy, ax, ay, bx, by)
        )


class TestSegmentSegmentDistance:
    def test_zero_iff_intersecting(self):
        assert segment_segment_distance_sq(0, 0, 2, 2, 0, 2, 2, 0) == 0.0

    def test_parallel(self):
        assert segment_segment_distance_sq(0, 0, 1, 0, 0, 2, 1, 2) == pytest.approx(4.0)

    def test_endpoint_to_interior(self):
        d = segment_segment_distance_sq(0, 1, 0, 3, -5, 0, 5, 0)
        assert d == pytest.approx(1.0)

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    def test_consistency_with_intersection(self, ax, ay, bx, by, cx, cy, dx, dy):
        d = segment_segment_distance_sq(ax, ay, bx, by, cx, cy, dx, dy)
        inter = segments_intersect(ax, ay, bx, by, cx, cy, dx, dy)
        assert d >= 0
        if inter:
            assert d == 0.0
        # the converse (d == 0 implies reported intersection) does not hold
        # exactly in floating point: a projection can evaluate to zero while
        # the orientation predicates see a tiny non-zero area

    @given(coord, coord, coord, coord, coord, coord, coord, coord)
    def test_symmetric(self, ax, ay, bx, by, cx, cy, dx, dy):
        d1 = segment_segment_distance_sq(ax, ay, bx, by, cx, cy, dx, dy)
        d2 = segment_segment_distance_sq(cx, cy, dx, dy, ax, ay, bx, by)
        assert d1 == pytest.approx(d2, abs=1e-9)

    def test_euclidean_consistency(self):
        # distance between two points as degenerate segments
        d = segment_segment_distance_sq(0, 0, 0, 0, 3, 4, 3, 4)
        assert math.sqrt(d) == pytest.approx(5.0)
