"""Unit tests for the Spark-like RDD layer."""

import pytest

from repro.engine.cluster import SimCluster
from repro.engine.partitioner import HashPartitioner
from repro.engine.rdd import SimPairRDD, SimRDD, default_record_bytes
from repro.engine.shuffle import ShuffleStats
from repro.geometry.point import Side, SpatialPoint


@pytest.fixture
def cluster():
    return SimCluster(3)


class TestBasics:
    def test_parallelize_round_robin(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(10), num_partitions=3)
        assert rdd.num_partitions == 3
        assert sorted(rdd.collect()) == list(range(10))
        assert rdd.partitions[0] == [0, 3, 6, 9]

    def test_map_filter_flat_map(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(6))
        assert sorted(rdd.map(lambda x: x * 2).collect()) == [0, 2, 4, 6, 8, 10]
        assert sorted(rdd.filter(lambda x: x % 2 == 0).collect()) == [0, 2, 4]
        assert sorted(rdd.flat_map(lambda x: [x, x]).count() for _ in [0])[0] == 12

    def test_sample_deterministic_and_bounded(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(1000))
        a = rdd.sample(0.1, seed=7).collect()
        b = rdd.sample(0.1, seed=7).collect()
        assert a == b
        assert 40 <= len(a) <= 200

    def test_foreach(self, cluster):
        acc = []
        SimRDD.parallelize(cluster, range(5)).foreach(acc.append)
        assert sorted(acc) == list(range(5))

    def test_key_by(self, cluster):
        pairs = SimRDD.parallelize(cluster, ["aa", "b"]).key_by(len).collect()
        assert sorted(pairs) == [(1, "b"), (2, "aa")]

    def test_empty_rdd(self, cluster):
        rdd = SimRDD.parallelize(cluster, [])
        assert rdd.count() == 0
        assert rdd.map(lambda x: x).collect() == []


class TestShuffles:
    def test_partition_by_routes_keys(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(12)).key_by(lambda x: x % 4)
        out = rdd.partition_by(HashPartitioner(4))
        for pidx, part in enumerate(out.partitions):
            assert all(k % 4 == pidx for k, _v in part)

    def test_partition_by_accounts_shuffle(self, cluster):
        stats = ShuffleStats()
        rdd = SimRDD.parallelize(cluster, range(20)).key_by(lambda x: x)
        rdd.partition_by(HashPartitioner(5), stats)
        assert stats.records == 20
        assert stats.remote_records <= 20
        assert stats.bytes > 0

    def test_join_matches_reference(self, cluster):
        left = SimRDD.parallelize(cluster, [(k, f"l{k}") for k in range(8)])
        left = SimPairRDD(cluster, left.partitions)
        right = SimPairRDD(
            cluster,
            SimRDD.parallelize(cluster, [(k % 4, f"r{k}") for k in range(8)]).partitions,
        )
        got = sorted(left.join(right, HashPartitioner(3)).collect())
        expected = sorted(
            (k, (f"l{k}", f"r{j}")) for j in range(8) for k in [j % 4]
        )
        assert got == expected

    def test_group_by_key(self, cluster):
        rdd = SimPairRDD(
            cluster,
            SimRDD.parallelize(cluster, [(1, "a"), (2, "b"), (1, "c")]).partitions,
        )
        grouped = dict(rdd.group_by_key().collect())
        assert sorted(grouped[1]) == ["a", "c"]
        assert grouped[2] == ["b"]

    def test_keys_values(self, cluster):
        rdd = SimPairRDD(
            cluster, SimRDD.parallelize(cluster, [(1, "a"), (2, "b")]).partitions
        )
        assert sorted(rdd.keys().collect()) == [1, 2]
        assert sorted(rdd.values().collect()) == ["a", "b"]

    def test_distinct_removes_duplicates_and_accounts(self, cluster):
        stats = ShuffleStats()
        rdd = SimRDD.parallelize(cluster, [1, 2, 2, 3, 3, 3])
        out = rdd.distinct(stats)
        assert sorted(out.collect()) == [1, 2, 3]
        assert stats.records == 6


class TestExtendedOps:
    def test_map_partitions(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(9), num_partitions=3)
        sums = rdd.map_partitions(lambda p: [sum(p)]).collect()
        assert len(sums) == 3
        assert sum(sums) == sum(range(9))

    def test_union(self, cluster):
        a = SimRDD.parallelize(cluster, [1, 2])
        b = SimRDD.parallelize(cluster, [3])
        u = a.union(b)
        assert sorted(u.collect()) == [1, 2, 3]
        assert u.num_partitions == a.num_partitions + b.num_partitions

    def test_glom(self, cluster):
        rdd = SimRDD.parallelize(cluster, range(6), num_partitions=2)
        glommed = rdd.glom().collect()
        assert len(glommed) == 2
        assert sorted(x for part in glommed for x in part) == list(range(6))

    def test_sort_by(self, cluster):
        rdd = SimRDD.parallelize(cluster, [5, 3, 9, 1, 7], num_partitions=2)
        out = rdd.sort_by(lambda x: x)
        assert out.collect() == [1, 3, 5, 7, 9]

    def test_reduce_by_key(self, cluster):
        pairs = [(k % 3, 1) for k in range(12)]
        rdd = SimPairRDD(cluster, SimRDD.parallelize(cluster, pairs).partitions)
        out = dict(rdd.reduce_by_key(lambda a, b: a + b).collect())
        assert out == {0: 4, 1: 4, 2: 4}

    def test_reduce_by_key_pre_aggregates_shuffle(self, cluster):
        stats = ShuffleStats()
        pairs = [(0, 1)] * 100  # one key, many values
        rdd = SimPairRDD(
            cluster, SimRDD.parallelize(cluster, pairs, num_partitions=4).partitions
        )
        rdd.reduce_by_key(lambda a, b: a + b, HashPartitioner(4), stats)
        # map-side combine: at most one record per (partition, key)
        assert stats.records <= 4

    def test_count_by_key(self, cluster):
        rdd = SimPairRDD(
            cluster,
            SimRDD.parallelize(cluster, [(1, "a"), (1, "b"), (2, "c")]).partitions,
        )
        assert rdd.count_by_key() == {1: 2, 2: 1}


class TestTextFile:
    def test_round_trip(self, cluster, tmp_path):
        path = tmp_path / "pts.txt"
        path.write_text("1,0.5,0.25\n2,1.5,2.5\n")
        rdd = SimRDD.text_file(cluster, str(path))
        assert rdd.count() == 2
        assert rdd.collect()[0] == "1,0.5,0.25"


class TestRecordBytes:
    def test_spatial_point(self):
        p = SpatialPoint(1, 0, 0, Side.R, payload_bytes=10)
        assert default_record_bytes(p) == 34

    def test_tuple_and_scalars(self):
        assert default_record_bytes((1, 2.0)) == 16
        assert default_record_bytes("abcd") == 4
        assert default_record_bytes(object()) == 16
