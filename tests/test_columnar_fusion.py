"""The columnar zero-copy task path: fused == discrete, bit for bit.

Four guarantees around the fused assign -> shuffle -> local-join path:

1. *Equivalence matrix* -- with fusion on (the default), every driver
   returns the same pair-set, integer metrics and full-precision modelled
   clocks as the discrete stage pipeline (``fused=False``), across
   kernels and execution backends.
2. *Fault semantics survive fusion* -- chaos runs (kill + fetch faults,
   disk spill, cell checkpointing) through the fused path still salvage
   and still match the fault-free discrete reference.
3. *Payload lint* -- process-pool task arguments carry slice descriptors
   into shared memory, never per-record object lists or big arrays.
4. *Zero-copy plumbing* -- the memory-tier block store hands back the
   arrays it was given (no serialization round-trip), and the shuffle
   spills slice views sharing one backing array per side.

Plus unit-level equivalence for the two batched primitives: the batched
``grid_hash`` kernel and the k-way-merge distinct.
"""

import pickle

import numpy as np
import pytest

from repro.data.generators import gaussian_clusters, real_like
from repro.geometry.point import Side
from repro.joins.distance_join import JoinConfig, distance_join
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)
from repro.joins.object_join import (
    ObjectSet,
    object_distance_join,
)
from repro.data.object_generators import random_boxes


def core_metrics(m) -> dict:
    return {
        "replicated_r": int(m.replicated_r),
        "replicated_s": int(m.replicated_s),
        "shuffle_records": int(m.shuffle_records),
        "shuffle_bytes": int(m.shuffle_bytes),
        "remote_records": int(m.remote_records),
        "remote_bytes": int(m.remote_bytes),
        "candidate_pairs": int(m.candidate_pairs),
        "results": int(m.results),
        "grid_cells": int(m.grid_cells),
    }


# ----------------------------------------------------------------------
# 1. fused == discrete across the kernel x backend matrix
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def points():
    return (
        gaussian_clusters(600, seed=1, name="R"),
        gaussian_clusters(550, seed=2, name="S"),
    )


@pytest.mark.parametrize("kernel", ("plane_sweep", "grid_hash"))
@pytest.mark.parametrize("backend", ("serial", "threads", "processes"))
def test_distance_fused_equals_discrete(points, kernel, backend):
    r, s = points
    base = dict(
        eps=0.02, method="lpib", num_workers=4, local_kernel=kernel,
        execution_backend=backend, executor_workers=2, seed=0,
    )
    discrete = distance_join(r, s, JoinConfig(**base, fused=False))
    fused = distance_join(r, s, JoinConfig(**base, fused=True))
    assert len(fused) > 0
    assert fused.pairs_set() == discrete.pairs_set()
    assert core_metrics(fused.metrics) == core_metrics(discrete.metrics)
    # modelled clocks bit-identical: fusion must not move a single float
    assert repr(fused.metrics.construction_time_model) == repr(
        discrete.metrics.construction_time_model
    )
    assert repr(fused.metrics.join_time_model) == repr(
        discrete.metrics.join_time_model
    )


def test_object_fused_equals_discrete():
    r = ObjectSet(random_boxes(250, Side.R, seed=11), "R")
    s = ObjectSet(random_boxes(250, Side.S, seed=22), "S")
    discrete = object_distance_join(r, s, 0.01, num_workers=4, fused=False)
    fused = object_distance_join(r, s, 0.01, num_workers=4, fused=True)
    assert len(fused) > 0
    assert fused.pairs_set() == discrete.pairs_set()
    assert core_metrics(fused.metrics) == core_metrics(discrete.metrics)


def test_generalized_fused_equals_discrete():
    r = gaussian_clusters(400, seed=101, name="R")
    s = real_like(400, seed=11, name="S")
    base = dict(eps=0.02, partition="quadtree", method="lpib", num_workers=4)
    discrete = generalized_distance_join(
        r, s, GeneralizedJoinConfig(**base, fused=False)
    )
    fused = generalized_distance_join(
        r, s, GeneralizedJoinConfig(**base, fused=True)
    )
    assert len(fused) > 0
    assert fused.pairs_set() == discrete.pairs_set()
    assert core_metrics(fused.metrics) == core_metrics(discrete.metrics)


def test_fused_reports_launch_overhead_model(points):
    """The launch-overhead satellite lands in ``extra``, not the clocks."""
    r, s = points
    res = distance_join(r, s, JoinConfig(eps=0.02, num_workers=4))
    m = res.metrics
    assert m.extra["launch_overhead_model"] > 0
    assert m.extra["join_time_model_launch_adjusted"] == (
        m.join_time_model + m.extra["launch_overhead_model"]
    )


# ----------------------------------------------------------------------
# 2. chaos through the fused path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ("threads", "processes"))
def test_fused_chaos_matches_fault_free_discrete(tmp_path, points, backend):
    r, s = points
    base = dict(
        eps=0.02, method="lpib", num_workers=4, local_kernel="grid_hash",
        seed=0,
    )
    reference = distance_join(r, s, JoinConfig(**base, fused=False))
    assert len(reference) > 0
    chaos = distance_join(
        r, s,
        JoinConfig(
            **base, fused=True, execution_backend=backend,
            executor_workers=2, faults="fetch:p=1:times=1;kill:p=1:times=1",
            max_retries=3, spill="disk", spill_dir=str(tmp_path),
            checkpoint_cells=True,
        ),
    )
    assert chaos.pairs_set() == reference.pairs_set()
    assert chaos.metrics.fault_events > 0, "the injected faults never fired"
    assert chaos.metrics.blocks_refetched > 0
    assert chaos.metrics.cells_salvaged > 0, (
        "cell checkpointing must keep salvaging under fusion (the batched "
        "kernel path is required to stand down when checkpoints are on)"
    )
    assert list(tmp_path.iterdir()) == [], "spill dir not cleaned up"


# ----------------------------------------------------------------------
# 3. payload lint: task args ship descriptors, not record lists
# ----------------------------------------------------------------------
def _plan_and_tasks(n_cells=50, per_cell=200):
    """A realistic plan: ``n_cells`` cells of ``per_cell`` points each."""
    from repro.engine.executor import build_execution_plan

    rng = np.random.default_rng(13)
    total = n_cells * per_cell
    ids = np.arange(total, dtype=np.int64)
    xs, ys = rng.uniform(0, 1, total), rng.uniform(0, 1, total)
    groups = {
        c: np.arange(c * per_cell, (c + 1) * per_cell) for c in range(n_cells)
    }
    cell_worker = {c: c % 4 for c in range(n_cells)}
    plan = build_execution_plan(
        (ids, xs, ys), (ids, xs, ys), groups, groups, cell_worker
    )
    return plan, plan.worker_groups()


def test_process_task_args_are_descriptor_sized():
    """Pickled task args stay O(1) no matter how many records shuffle.

    Builds a 10k-point plan, publishes it the way ``_pool_tier`` does,
    and lints every worker's argument tuple: a few hundred bytes, no
    numpy arrays, no lists of per-record objects -- only the ``("slice",
    start, length)`` descriptor into the shared position table.
    """
    from repro.engine.executor import (
        _make_process_task_args,
        _plan_meta_to_shm,
    )

    plan, tasks = _plan_and_tasks()
    shm_meta, pos_desc = _plan_meta_to_shm(plan, tasks)
    try:
        total_positions = sum(len(p) for p in tasks.values())
        n_pts = len(plan.r_ids)
        for worker_id, positions in tasks.items():
            args = _make_process_task_args(
                worker_id, positions, tasks[worker_id], pos_desc,
                "grid_hash", 0.02, "shm_r", n_pts, "shm_s", n_pts,
                shm_meta.name, plan.num_cells, plan.origins is not None,
                total_positions, 0, None, None, True, False, None, None,
            )
            payload = pickle.dumps(args)
            assert len(payload) < 1024, (
                f"worker {worker_id} task args pickled to {len(payload)}B; "
                "per-record data is leaking into the task payload"
            )
            kind = args[1][0]
            assert kind == "slice", "expected a slice descriptor"
            flat = list(args) + list(args[1][1:])
            for item in flat:
                assert not isinstance(item, np.ndarray)
                assert not (isinstance(item, (list, tuple)) and len(item) > 8)
    finally:
        shm_meta.close()
        shm_meta.unlink()


def test_salvage_path_still_ships_explicit_positions():
    """A checkpoint-salvaged (filtered) group falls back to an array."""
    from repro.engine.executor import (
        _make_process_task_args,
        _plan_meta_to_shm,
    )

    plan, tasks = _plan_and_tasks()
    shm_meta, pos_desc = _plan_meta_to_shm(plan, tasks)
    try:
        total = sum(len(p) for p in tasks.values())
        n_pts = len(plan.r_ids)
        worker_id = next(iter(tasks))
        filtered = tasks[worker_id][1:]  # a salvage-style remainder
        args = _make_process_task_args(
            worker_id, filtered, tasks[worker_id], pos_desc,
            "grid_hash", 0.02, "shm_r", n_pts, "shm_s", n_pts,
            shm_meta.name, plan.num_cells, plan.origins is not None,
            total, 1, None, None, False, False, None, None,
        )
        assert args[1][0] == "array"
        np.testing.assert_array_equal(args[1][1], filtered)
    finally:
        shm_meta.close()
        shm_meta.unlink()


# ----------------------------------------------------------------------
# 4. zero-copy plumbing
# ----------------------------------------------------------------------
def test_memory_tier_fetch_is_zero_copy():
    from repro.engine.blockstore.store import BlockId, BlockStore

    store = BlockStore(tier="memory")
    arrays = {
        "cells": np.arange(10, dtype=np.int64),
        "points": np.arange(10, dtype=np.int64),
    }
    bid = BlockId("R", 0, 1)
    store.put(bid, arrays, records=10, logical_bytes=240)
    _meta, fetched = store.fetch(bid)
    assert fetched["cells"] is arrays["cells"], (
        "memory tier must serve the stored array itself, not a copy"
    )
    assert fetched["points"] is arrays["points"]
    store.close()


def test_spilled_shuffle_blocks_share_one_backing_array():
    """``spill_side_blocks`` puts slice views, not per-block copies."""
    from repro.engine.blockstore.store import BlockId, BlockStore
    from repro.joins.pipeline import spill_side_blocks

    rng = np.random.default_rng(7)
    n = 500
    cells = rng.integers(0, 20, n)
    idxs = np.arange(n, dtype=np.int64)
    src = rng.integers(0, 3, n)
    dst = rng.integers(0, 3, n)
    store = BlockStore(tier="memory")
    spill_side_blocks(store, "R", cells, idxs, src, dst, 24, 3)
    assert store.blocks_spilled > 1
    bases = set()
    total_records = 0
    for bid in list(store._meta):
        _meta, arrays = store.fetch(bid)
        assert arrays["cells"].base is not None, "expected a slice view"
        bases.add(id(arrays["cells"].base))
        total_records += len(arrays["cells"])
        # each block holds exactly one (src, dst) edge's records
        sel = (src == bid.src) & (dst == bid.dst)
        np.testing.assert_array_equal(
            np.sort(arrays["points"]), np.sort(idxs[sel])
        )
    assert len(bases) == 1, "blocks must share one backing array per side"
    assert total_records == n
    store.close()


# ----------------------------------------------------------------------
# 5. batched primitives
# ----------------------------------------------------------------------
def test_batched_grid_hash_matches_scalar_kernel():
    from repro.joins.local import grid_hash_join, grid_hash_join_batch

    rng = np.random.default_rng(3)
    segments = []
    for i in range(12):
        n_r = int(rng.integers(0, 60))
        n_s = int(rng.integers(0, 60))
        segments.append((
            (np.arange(n_r, dtype=np.int64), rng.uniform(0, 1, n_r),
             rng.uniform(0, 1, n_r)),
            (np.arange(n_s, dtype=np.int64), rng.uniform(0, 1, n_s),
             rng.uniform(0, 1, n_s)),
        ))
    eps = 0.05

    def concat(side_idx, col):
        parts = [seg[side_idx][col] for seg in segments]
        offsets = np.zeros(len(segments) + 1, dtype=np.int64)
        np.cumsum([len(p) for p in parts], out=offsets[1:])
        return np.concatenate(parts), offsets

    r_ids, r_off = concat(0, 0)
    r_xs, _ = concat(0, 1)
    r_ys, _ = concat(0, 2)
    s_ids, s_off = concat(1, 0)
    s_xs, _ = concat(1, 1)
    s_ys, _ = concat(1, 2)

    out = grid_hash_join_batch(
        r_ids, r_xs, r_ys, r_off, s_ids, s_xs, s_ys, s_off, eps, None
    )
    assert out is not None
    pair_r, pair_s, candidates = out
    for i, (rseg, sseg) in enumerate(segments):
        ref_r, ref_s, ref_c = grid_hash_join(*rseg, *sseg, eps)
        np.testing.assert_array_equal(pair_r[i], ref_r)
        np.testing.assert_array_equal(pair_s[i], ref_s)
        assert int(candidates[i]) == int(ref_c)


def test_batched_distinct_matches_full_unique():
    from repro.joins.postprocess import (
        distinct_pairs,
        distinct_pairs_batched,
        merge_sorted_unique,
        pack_pair_keys,
    )

    rng = np.random.default_rng(5)
    r_ids = rng.integers(0, 50, 4000).astype(np.int64)
    s_ids = rng.integers(0, 50, 4000).astype(np.int64)
    ref_r, ref_s = distinct_pairs(r_ids, s_ids)
    for blocks in (1, 3, 7, 16):
        bounds = np.linspace(0, len(r_ids), blocks + 1).astype(np.int64)
        got_r, got_s = distinct_pairs_batched(r_ids, s_ids, bounds)
        np.testing.assert_array_equal(got_r, ref_r)
        np.testing.assert_array_equal(got_s, ref_s)

    # the merge alone: equals np.unique over the concatenation
    key = pack_pair_keys(r_ids, s_ids)
    parts = [np.unique(key[i::4]) for i in range(4)]
    np.testing.assert_array_equal(
        merge_sorted_unique(parts), np.unique(key)
    )
    assert len(merge_sorted_unique([])) == 0
    one = np.unique(key)
    assert merge_sorted_unique([one]) is one
