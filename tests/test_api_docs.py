"""Tests for the API-documentation generator."""

import importlib.util
import sys


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", "scripts/gen_api_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["gen_api_docs"] = module
    spec.loader.exec_module(module)
    return module


def test_render_covers_key_api():
    gen = _load_generator()
    text = gen.render()
    for anchor in (
        "repro.agreements.marking",
        "repro.joins.distance_join",
        "class AgreementGraph",
        "def distance_join",
        "def spatial_join",
        "class RTree",
        "def knn_join",
        "class AnalyticalCostModel",
    ):
        assert anchor in text, anchor


def test_main_writes_file(tmp_path):
    gen = _load_generator()
    out = tmp_path / "API.md"
    assert gen.main(str(out)) == 0
    content = out.read_text()
    assert content.startswith("# API reference")
    assert content.count("### ") > 100
