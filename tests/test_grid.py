"""Unit tests for the regular grid (Sect. 4.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry.mbr import MBR
from repro.grid.grid import Grid


class TestConstruction:
    def test_paper_formula(self):
        # m_x = ceil((xmax - xmin) / (2 eps)) - 1
        g = Grid(MBR(0, 0, 10, 10), eps=1.0)
        assert (g.nx, g.ny) == (4, 4)
        assert g.cell_w == pytest.approx(2.5)

    def test_cell_side_exceeds_two_eps(self):
        for extent, eps in [(10, 1.0), (7.3, 0.4), (100, 3.7), (5, 1.0)]:
            g = Grid(MBR(0, 0, extent, extent), eps)
            if g.nx > 1:
                assert g.cell_w > 2 * eps
            if g.ny > 1:
                assert g.cell_h > 2 * eps

    @given(st.floats(1.0, 1000.0), st.floats(0.01, 10.0))
    def test_cell_side_property(self, extent, eps):
        g = Grid(MBR(0, 0, extent, extent), eps)
        assert g.nx >= 1 and g.ny >= 1
        if g.nx > 1:
            assert g.cell_w >= 2 * eps

    def test_resolution_factor(self):
        g2 = Grid(MBR(0, 0, 100, 100), eps=1.0, resolution_factor=2.0)
        g5 = Grid(MBR(0, 0, 100, 100), eps=1.0, resolution_factor=5.0)
        assert g5.nx < g2.nx
        assert g5.cell_w >= 5.0

    def test_tiny_extent_clamps_to_one_cell(self):
        g = Grid(MBR(0, 0, 0.5, 0.5), eps=1.0)
        assert (g.nx, g.ny) == (1, 1)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Grid(MBR(0, 0, 1, 1), eps=0.0)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            Grid(MBR(0, 0, 1, 1), eps=0.1, resolution_factor=0.5)

    def test_describe_mentions_shape(self):
        g = Grid(MBR(0, 0, 10, 10), eps=1.0)
        assert "4x4" in g.describe()


class TestAddressing:
    def test_cell_id_roundtrip(self, grid4x4):
        for cid in range(grid4x4.num_cells):
            cx, cy = grid4x4.cell_pos(cid)
            assert grid4x4.cell_id(cx, cy) == cid

    def test_cell_index_interior(self, grid4x4):
        assert grid4x4.cell_index(0.1, 0.1) == (0, 0)
        assert grid4x4.cell_index(9.9, 9.9) == (3, 3)
        assert grid4x4.cell_index(2.6, 5.1) == (1, 2)

    def test_cell_index_clamps_outside(self, grid4x4):
        assert grid4x4.cell_index(-5, -5) == (0, 0)
        assert grid4x4.cell_index(50, 50) == (3, 3)

    def test_point_on_max_edge_belongs_to_last_cell(self, grid4x4):
        assert grid4x4.cell_index(10.0, 10.0) == (3, 3)

    def test_cell_mbr_tiles_space(self, grid4x4):
        total = sum(
            grid4x4.cell_mbr(cx, cy).area
            for cy in range(grid4x4.ny)
            for cx in range(grid4x4.nx)
        )
        assert total == pytest.approx(grid4x4.mbr.area)

    def test_cell_of_matches_mbr(self, grid4x4):
        x, y = 3.7, 8.1
        cx, cy = grid4x4.cell_index(x, y)
        assert grid4x4.cell_mbr(cx, cy).contains_point(x, y)

    def test_neighbors_interior(self, grid4x4):
        assert len(list(grid4x4.neighbors(1, 1))) == 8

    def test_neighbors_corner(self, grid4x4):
        assert len(list(grid4x4.neighbors(0, 0))) == 3

    def test_neighbors_edge(self, grid4x4):
        assert len(list(grid4x4.neighbors(0, 1))) == 5


class TestCornersAndQuartets:
    def test_interior_corner_count(self, grid4x4):
        assert len(list(grid4x4.interior_corners())) == 9

    def test_no_interior_corner_on_single_row(self):
        g = Grid(MBR(0, 0, 10, 2.4), eps=1.0)
        assert g.ny == 1
        assert list(g.interior_corners()) == []

    def test_corner_coords(self, grid4x4):
        assert grid4x4.corner_coords(1, 1) == (2.5, 2.5)

    def test_is_interior_corner(self, grid4x4):
        assert grid4x4.is_interior_corner(1, 1)
        assert not grid4x4.is_interior_corner(0, 1)
        assert not grid4x4.is_interior_corner(4, 2)

    def test_quartet_cells_layout(self, grid4x4):
        cells = grid4x4.quartet_cells(2, 1)
        assert cells["bl"] == grid4x4.cell_id(1, 0)
        assert cells["br"] == grid4x4.cell_id(2, 0)
        assert cells["tl"] == grid4x4.cell_id(1, 1)
        assert cells["tr"] == grid4x4.cell_id(2, 1)

    def test_quartet_cells_are_around_corner(self, grid4x4):
        qx, qy = 2, 2
        cx, cy = grid4x4.corner_coords(qx, qy)
        for cell in grid4x4.quartet_cells(qx, qy).values():
            mbr = grid4x4.cell_mbr(*grid4x4.cell_pos(cell))
            assert mbr.contains_point(cx, cy)


class TestAdjacency:
    def test_pair_counts_4x4(self, grid4x4):
        pairs = list(grid4x4.adjacent_pairs())
        sides = [p for p in pairs if p[2] == "side"]
        corners = [p for p in pairs if p[2] == "corner"]
        assert len(sides) == 24  # 2 * 4 * 3
        assert len(corners) == 18  # 2 * 3 * 3

    def test_pairs_unique(self, grid4x4):
        pairs = [frozenset(p[:2]) for p in grid4x4.adjacent_pairs()]
        assert len(pairs) == len(set(pairs))

    def test_pair_kind(self, grid4x4):
        a = grid4x4.cell_id(0, 0)
        assert grid4x4.pair_kind(a, grid4x4.cell_id(1, 0)) == "side"
        assert grid4x4.pair_kind(a, grid4x4.cell_id(1, 1)) == "corner"

    def test_pair_kind_rejects_non_adjacent(self, grid4x4):
        with pytest.raises(ValueError):
            grid4x4.pair_kind(grid4x4.cell_id(0, 0), grid4x4.cell_id(2, 0))
        with pytest.raises(ValueError):
            grid4x4.pair_kind(5, 5)

    def test_adjacent_pairs_kind_consistent(self, grid4x4):
        for a, b, kind in grid4x4.adjacent_pairs():
            assert grid4x4.pair_kind(a, b) == kind
