"""Agreements beyond the grid: QuadTree partitioning (Sect. 8).

The paper's future work asks to generalize the graph-of-agreements
abstraction to other partitioning schemes.  This example runs the
generalized join -- agreements plus ownership-based duplicate avoidance
-- on both a uniform grid and a data-adaptive QuadTree over a heavily
skewed workload, and contrasts them with the paper's marking-based grid
algorithm.

Run:  python examples/quadtree_partitioning.py
"""

from repro import gaussian_clusters, real_like, spatial_join
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)

EPS = 0.012


def main() -> None:
    r = real_like(25_000, seed=11, name="hydro")
    s = gaussian_clusters(25_000, seed=101, name="sensors")
    print(f"{len(r):,} x {len(s):,} points, eps = {EPS}\n")

    marking = spatial_join(r, s, eps=EPS, method="lpib")
    print(f"{'grid + marking (paper)':>26}: "
          f"repl={marking.metrics.replicated_total:>6,} "
          f"leaves={marking.metrics.grid_cells:>5,} "
          f"time={marking.metrics.exec_time_model:.3f}s")

    for partition in ("grid", "quadtree"):
        cfg = GeneralizedJoinConfig(eps=EPS, partition=partition, method="lpib")
        res = generalized_distance_join(r, s, cfg)
        assert res.pairs_set() == marking.pairs_set(), partition
        m = res.metrics
        print(f"{partition + ' + ownership':>26}: repl={m.replicated_total:>6,} "
              f"leaves={m.grid_cells:>5,} time={m.exec_time_model:.3f}s")

    print(
        "\nall three schemes return the identical result set.\n"
        "The QuadTree spends its leaves where the data is: empty regions\n"
        "collapse into single leaves, so the agreement graph is a fraction\n"
        "of the grid's size.  Ownership reporting removes the need for the\n"
        "marking machinery but pays a per-result filtering cost -- which is\n"
        "exactly the overhead the paper's duplicate-free assignment avoids."
    )


if __name__ == "__main__":
    main()
