"""Tuning the simulated cluster: nodes, load balancing and tuple size.

Reproduces three of the paper's operational findings interactively:

1. more executors cut execution time with diminishing returns (Fig. 14);
2. LPT cell placement beats hash partitioning under skew (Table 7);
3. fat tuples punish replication-heavy methods (Figs. 16-18).

Run:  python examples/cluster_tuning.py
"""

from repro import load_dataset
from repro.joins.distance_join import JoinConfig, distance_join

EPS = 0.012


def scaling_out(r, s) -> None:
    print("-- scaling out (LPiB) --")
    prev = None
    for workers in (2, 4, 8, 16):
        cfg = JoinConfig(
            eps=EPS, method="lpib", num_workers=workers,
            num_partitions=8 * workers, collect_pairs=False,
        )
        t = distance_join(r, s, cfg).metrics.exec_time_model
        speedup = "" if prev is None else f"  ({prev / t:.2f}x vs previous)"
        print(f"  {workers:>2} workers: {t:7.3f}s{speedup}")
        prev = t


def load_balancing(r, s) -> None:
    print("\n-- cell placement under skew (DIFF) --")
    for assignment in ("hash", "lpt"):
        cfg = JoinConfig(
            eps=EPS, method="diff", cell_assignment=assignment, collect_pairs=False
        )
        m = distance_join(r, s, cfg).metrics
        loads = m.worker_join_costs
        imbalance = max(loads) / (sum(loads) / len(loads)) if sum(loads) else 0
        print(f"  {assignment:>4}: time {m.exec_time_model:7.3f}s, "
              f"peak/mean worker load {imbalance:.2f}")


def tuple_size(r, s) -> None:
    print("\n-- tuple size: adaptive vs universal replication --")
    for payload in (0, 256):
        for method in ("lpib", "uni_s"):
            cfg = JoinConfig(eps=EPS, method=method, collect_pairs=False)
            m = distance_join(
                r.with_payload(payload), s.with_payload(payload), cfg
            ).metrics
            print(f"  payload {payload:>3}B {method:>6}: "
                  f"remote {m.remote_bytes / 1e6:7.2f} MB, "
                  f"time {m.exec_time_model:7.3f}s")


def main() -> None:
    r = load_dataset("R1", base_n=25_000)
    s = load_dataset("S1", base_n=25_000)
    print(f"workload: {len(r):,} x {len(s):,} points, eps = {EPS}\n")
    scaling_out(r, s)
    load_balancing(r, s)
    tuple_size(r, s)


if __name__ == "__main__":
    main()
