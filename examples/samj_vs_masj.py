"""The Sect. 2 taxonomy, live: SAMJ vs MASJ vs adaptive replication.

Parallel spatial joins either assign every object once and join each
partition with several others (*single-assigned multi-join*, the R-tree
family) or assign objects to several partitions and join each partition
once (*multi-assigned single-join*, the grid family the paper improves).
This example runs one representative of each on the same workload and
prints what each strategy pays for.

Run:  python examples/samj_vs_masj.py
"""

from repro import gaussian_clusters, spatial_join
from repro.baselines.rtree_join import SamjConfig, rtree_samj_join
from repro.joins.generalized_join import (
    GeneralizedJoinConfig,
    generalized_distance_join,
)

EPS = 0.012


def main() -> None:
    r = gaussian_clusters(20_000, seed=101, name="S1")
    s = gaussian_clusters(20_000, seed=202, name="S2")
    print(f"{len(r):,} x {len(s):,} points, eps = {EPS}\n")

    runs = []
    samj = rtree_samj_join(r, s, SamjConfig(eps=EPS))
    runs.append(("R-tree join (SAMJ)", samj))
    uni = spatial_join(r, s, eps=EPS, method="uni_r")
    runs.append(("PBSM UNI(R) (MASJ)", uni))
    clone = generalized_distance_join(
        r, s, GeneralizedJoinConfig(eps=EPS, partition="grid", method="clone")
    )
    runs.append(("clone join (MASJ, both sides)", clone))
    adaptive = spatial_join(r, s, eps=EPS, method="lpib")
    runs.append(("adaptive LPiB (this paper)", adaptive))

    reference = adaptive.pairs_set()
    print(f"{'algorithm':>30} | {'replicated':>10} | {'shipped rec.':>12} | "
          f"{'model s':>8}")
    print("-" * 72)
    for name, res in runs:
        assert res.pairs_set() == reference, name
        m = res.metrics
        print(f"{name:>30} | {m.replicated_total:>10,} | "
              f"{m.shuffle_records:>12,} | {m.exec_time_model:>8.3f}")

    print(
        "\nall four return the identical result set.  SAMJ avoids\n"
        "replication by shipping whole subtrees to every task they join;\n"
        "universal MASJ replication ships every border point of one input\n"
        "everywhere; the clone join replicates both inputs and filters by\n"
        "reference point; adaptive agreements ship the least of all."
    )


if __name__ == "__main__":
    main()
