"""A guided tour of the graph of agreements on a tiny grid.

Walks through the paper's Sect. 4 machinery at human scale: builds a 3x3
grid, instantiates agreements with LPiB from hand-placed points, shows
which triangles are *mixed* (duplicate hazards), runs Algorithm 1 and
prints the resulting marked/locked edges, then demonstrates on a concrete
close pair how marking changes the point assignment so the pair is
reported exactly once.

Run:  python examples/agreement_graph_tour.py
"""

import numpy as np

from repro.agreements.graph import AgreementGraph
from repro.agreements.marking import (
    generate_duplicate_free_graph,
    mixed_triangles,
    triangle_apex,
)
from repro.agreements.policies import LPiBPolicy, instantiate_pair_types
from repro.geometry.mbr import MBR
from repro.geometry.point import Side
from repro.grid.grid import Grid
from repro.grid.statistics import GridStatistics
from repro.replication.assign import AdaptiveAssigner
from repro.verify.oracle import verify_assignment


def main() -> None:
    eps = 1.0
    grid = Grid(MBR(0, 0, 7.5, 7.5), eps)
    print(grid.describe())

    rng = np.random.default_rng(5)
    # R concentrated in the lower-left, S in the upper-right: neighbouring
    # regions will reach opposite agreements.
    r_xy = rng.normal(2.2, 1.4, (220, 2)).clip(0.05, 7.45)
    s_xy = rng.normal(5.2, 1.4, (200, 2)).clip(0.05, 7.45)

    stats = GridStatistics(grid)
    stats.add_points(r_xy[:, 0], r_xy[:, 1], Side.R)
    stats.add_points(s_xy[:, 0], s_xy[:, 1], Side.S)

    pair_types = instantiate_pair_types(grid, stats, LPiBPolicy())
    counts = {Side.R: 0, Side.S: 0}
    for side in pair_types.values():
        counts[side] += 1
    print(f"\nagreements: {counts[Side.R]} on R, {counts[Side.S]} on S "
          "(adaptive: different regions replicate different inputs)")

    graph = AgreementGraph(grid, pair_types, stats)
    hazards = sum(len(list(mixed_triangles(sub))) for sub in graph.quartets.values())
    print(f"mixed triangles before marking: {hazards} (each could duplicate results)")

    report = generate_duplicate_free_graph(graph)
    print(f"Algorithm 1 marked {report.marked_edges} edges across "
          f"{report.quartets} quartets; repairs needed: {report.repaired_triangles}")

    for corner, sub in graph.quartets.items():
        marked = sub.marked_edges()
        if marked:
            print(f"\nquartet at corner {corner} (ref {sub.ref}):")
            for e in marked:
                tri = next(
                    t for t in sub.triangles_of_pair(e.tail, e.head)
                    if triangle_apex(sub, t) == e.tail
                )
                print(f"  marked {e} via triangle {tri}; "
                      f"locked edges protect the third cell's replication")
            break

    assigner = AdaptiveAssigner(grid, graph)
    r_pts = [(i, float(x), float(y)) for i, (x, y) in enumerate(r_xy)]
    s_pts = [(i, float(x), float(y)) for i, (x, y) in enumerate(s_xy)]
    res = verify_assignment(assigner, r_pts, s_pts, eps)
    print(f"\npoint-level verification: {res.describe()}")

    # show one replicated point's cells
    x, y = 2.4, 2.4  # near an interior corner
    cells = assigner.assign(x, y, Side.R)
    print(f"point ({x}, {y}) of R is assigned to cells {cells} "
          f"(native first, then replicas chosen by the agreements)")


if __name__ == "__main__":
    main()
