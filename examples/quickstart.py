"""Quickstart: an epsilon-distance spatial join with adaptive replication.

Generates two skewed point sets, joins them with the paper's LPiB method,
and compares the key metrics against the PBSM baseline -- the one-minute
tour of the library.

Run:  python examples/quickstart.py
"""

from repro import gaussian_clusters, spatial_join


def main() -> None:
    # Two Gaussian-cluster data sets (the paper's S1/S2 distribution).
    r = gaussian_clusters(20_000, seed=101, name="S1")
    s = gaussian_clusters(20_000, seed=202, name="S2")
    eps = 0.012  # the paper's default distance threshold

    print(f"Joining {len(r):,} x {len(s):,} points, eps = {eps}\n")

    adaptive = spatial_join(r, s, eps=eps, method="lpib")
    baseline = spatial_join(r, s, eps=eps, method="uni_r")

    assert adaptive.pairs_set() == baseline.pairs_set(), "methods must agree"
    print(f"result pairs: {len(adaptive):,}\n")

    for result in (adaptive, baseline):
        print(result.metrics.summary())

    gain = baseline.metrics.replicated_total / max(
        adaptive.metrics.replicated_total, 1
    )
    print(
        f"\nadaptive replication moved {gain:.1f}x fewer replicated objects "
        "than universal replication (PBSM), with identical results."
    )

    # A few of the matched pairs:
    print("\nsample pairs (r_id, s_id):", sorted(adaptive.pairs_set())[:5])


if __name__ == "__main__":
    main()
