"""Objects with extent: joining park polygons with river polylines.

The paper's future work (Sect. 8) asks for polygons and polylines; this
library supports them through an anchor reduction that inherits the
adaptive machinery's correctness and duplicate-freeness.  The example
runs two classic GIS queries over generated "parks" and "rivers":

1. an **intersection join** -- which rivers flow through which parks
   (PBSM's original workload);
2. a **proximity join** -- which parks lie within walking distance of a
   river.

Run:  python examples/region_intersection_join.py
"""

from repro import (
    ObjectSet,
    Side,
    object_distance_join,
    object_intersection_join,
    random_polygons,
    random_polylines,
)

WALKING_DISTANCE = 0.008


def main() -> None:
    parks = ObjectSet(
        random_polygons(5_000, Side.R, mean_size=0.006, seed=3, payload_bytes=64),
        name="parks",
    )
    rivers = ObjectSet(
        random_polylines(4_000, Side.S, mean_size=0.012, seed=4, payload_bytes=32),
        name="rivers",
    )
    print(f"{len(parks):,} park polygons x {len(rivers):,} river polylines")
    print(f"max object radii: parks {parks.max_radius:.4f}, "
          f"rivers {rivers.max_radius:.4f}\n")

    crossing = object_intersection_join(parks, rivers, method="lpib")
    print(f"rivers crossing parks: {len(crossing):,} pairs")
    print(f"  {crossing.metrics.summary()}\n")

    nearby = object_distance_join(parks, rivers, WALKING_DISTANCE, method="lpib")
    print(f"parks within {WALKING_DISTANCE} of a river: {len(nearby):,} pairs")
    print(f"  {nearby.metrics.summary()}\n")

    assert crossing.pairs_set() <= nearby.pairs_set()

    # adaptive vs universal replication, object edition
    uni = object_distance_join(parks, rivers, WALKING_DISTANCE, method="uni_s")
    gain = uni.metrics.replicated_total / max(nearby.metrics.replicated_total, 1)
    assert uni.pairs_set() == nearby.pairs_set()
    print(f"adaptive replication ships {gain:.1f}x fewer object replicas "
          "than universal replication -- same result set.")


if __name__ == "__main__":
    main()
