"""Distance-based queries on the adaptive substrate: kNN join, closest
pairs, self-join.

The paper's related work (Sect. 2) surveys these query types in
SpatialHadoop/Sedona-style systems; here they run on top of the adaptive
distance join, inheriting its replication and partitioning.  The scenario:
dispatch centres (R) and incident reports (S).

Run:  python examples/knn_and_closest_pairs.py
"""

from repro import gaussian_clusters, real_like
from repro.joins.queries import closest_pairs, knn_join, self_join


def main() -> None:
    centres = real_like(3_000, seed=5, name="dispatch-centres")
    incidents = gaussian_clusters(12_000, seed=6, name="incidents")
    print(f"{len(centres):,} centres, {len(incidents):,} incidents\n")

    # For each centre: the 5 nearest incidents.
    res = knn_join(centres, incidents, k=5)
    print(f"kNN join (k=5): {len(res):,} pairs in {res.rounds} radius "
          f"round(s); modelled time {res.exec_time_model:.3f}s")
    worst = res.distances.max()
    print(f"  farthest assigned incident: {worst:.4f}\n")

    # The 10 most critical assignments overall.
    top = closest_pairs(centres, incidents, k=10)
    print("10 closest centre-incident pairs:")
    for rid, sid, d in zip(top.r_ids, top.s_ids, top.distances):
        print(f"  centre {rid:>5} -- incident {sid:>6}  d={d:.5f}")

    # Which incidents cluster together? (self-join within 0.005)
    clusters = self_join(incidents, eps=0.005)
    print(f"\nincident pairs within 0.005 of each other: {len(clusters):,} "
          f"(replicated {clusters.replicated_total:,} records)")


if __name__ == "__main__":
    main()
