"""Algorithm 5, stage by stage, on the Spark-like RDD layer.

Loads both inputs from text files (the HDFS stand-in), samples them to
build the grid statistics, instantiates and marks the graph of
agreements, flat-maps points to (cell, tuple) pairs, shuffles, joins and
refines -- printing what each stage produced, exactly mirroring the
paper's Algorithm 5.

Run:  python examples/spark_style_pipeline.py
"""

import os
import tempfile

from repro.data.generators import gaussian_clusters
from repro.data.io import write_points_text
from repro.engine.cluster import SimCluster
from repro.joins.spark_style import spark_style_join
from repro.verify.oracle import kdtree_pairs


def main() -> None:
    r = gaussian_clusters(4_000, seed=1, name="R")
    s = gaussian_clusters(4_000, seed=2, name="S")
    eps = 0.02
    mbr = r.mbr().union(s.mbr())

    with tempfile.TemporaryDirectory() as tmp:
        path_r = os.path.join(tmp, "r.txt")
        path_s = os.path.join(tmp, "s.txt")
        write_points_text(r, path_r)
        write_points_text(s, path_s)
        print(f"wrote inputs: {path_r}, {path_s}")

        cluster = SimCluster(num_workers=6)
        print(f"cluster: {cluster.num_workers} simulated workers")

        result = spark_style_join(
            path_r, path_s, mbr, eps, cluster,
            method="lpib", sample_rate=0.05, num_partitions=48,
        )

        print(f"grid: {result.grid.describe()}")
        print(f"shuffle: {result.shuffle.records:,} records, "
              f"{result.shuffle.bytes / 1e6:.2f} MB "
              f"({result.shuffle.remote_bytes / 1e6:.2f} MB remote)")
        print(f"result pairs: {len(result.pairs):,} "
              f"(produced {result.produced:,} -- duplicate-free)")

        truth = kdtree_pairs(list(r.iter_triples()), list(s.iter_triples()), eps)
        print("matches centralized KD-tree oracle:", result.pairs == truth)


if __name__ == "__main__":
    main()
