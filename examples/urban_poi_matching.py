"""Urban scenario: matching taxi pick-ups to points of interest.

The paper's introduction motivates distance joins with urban analytics:
find every (vehicle position, point of interest) pair within walking
distance.  Taxi activity is extremely skewed (downtown hotspots), while
POIs cluster differently (commercial corridors) -- exactly the regime
where a single global replication choice wastes work and adaptive
replication shines.

This example builds the two skewed sets, runs every method, and prints a
league table of replication / shuffle volume / modelled cluster time.

Run:  python examples/urban_poi_matching.py
"""

import time

from repro import real_like, spatial_join
from repro.data.generators import gaussian_clusters

WALKING_DISTANCE = 0.009  # in normalized city coordinates


def build_city():
    # taxis: heavy-tailed hotspots + thin background traffic
    taxis = real_like(
        30_000,
        n_clusters=60,
        zipf_exponent=1.3,
        background_fraction=0.15,
        seed=7,
        payload_bytes=48,  # trip metadata travels with each record
        name="taxi-pickups",
    )
    # POIs: a few dozen commercial clusters
    pois = gaussian_clusters(
        12_000, n_clusters=40, seed=13, payload_bytes=96, name="pois"
    )
    return taxis, pois


def main() -> None:
    taxis, pois = build_city()
    print(f"{len(taxis):,} pick-ups x {len(pois):,} POIs, eps = {WALKING_DISTANCE}\n")

    league = []
    reference = None
    for method in ("lpib", "diff", "uni_r", "uni_s", "eps_grid", "sedona"):
        start = time.perf_counter()
        result = spatial_join(taxis, pois, eps=WALKING_DISTANCE, method=method)
        wall = time.perf_counter() - start
        if reference is None:
            reference = result.pairs_set()
        assert result.pairs_set() == reference, f"{method} diverged"
        league.append((result.metrics.exec_time_model, method, result.metrics, wall))

    print(f"matched pairs: {len(reference):,}  (all methods agree)\n")
    print(f"{'method':>9} | {'replicated':>10} | {'remote MB':>9} | "
          f"{'model s':>8} | {'wall s':>6}")
    print("-" * 56)
    for model_time, method, metrics, wall in sorted(league):
        print(
            f"{method:>9} | {metrics.replicated_total:>10,} | "
            f"{metrics.remote_bytes / 1e6:>9.2f} | {model_time:>8.3f} | {wall:>6.2f}"
        )

    best = sorted(league)[0]
    print(f"\nwinner: {best[1]} -- local agreements adapt to where taxis "
          "or POIs dominate, replicating only the locally sparser side.")


if __name__ == "__main__":
    main()
