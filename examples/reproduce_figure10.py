"""Reproduce one paper artifact programmatically, in a few lines.

Runs the Fig. 10 experiment (replicated objects vs eps) through the
benchmark harness, prints the paper-style table, and renders the SVG
chart -- the same code paths the benchmark suite uses, exposed as a
library.

Run:  python examples/reproduce_figure10.py
"""

from repro.bench.experiments import ExperimentContext, fig10_replication_vs_eps
from repro.bench.figures import save_figure
from repro.bench.harness import BenchScale


def main() -> None:
    ctx = ExperimentContext(BenchScale(base_n=10_000, quick=False))
    text, (eps_values, series) = fig10_replication_vs_eps(ctx, ("S1", "S2"))
    print(text)

    path = save_figure(
        "example_fig10",
        "Fig. 10 -- replicated objects vs eps (S1 x S2)",
        "eps",
        "replicated objects (log scale)",
        eps_values,
        series,
        log_y=True,
    )
    print(f"\nSVG chart rendered to {path}")

    best_uni = min(min(series["uni_r"]), min(series["uni_s"]))
    best_adaptive = min(min(series["lpib"]), min(series["diff"]))
    print(f"adaptive replication minimum {best_adaptive:,} vs best universal "
          f"{best_uni:,} -- a {best_uni / max(best_adaptive, 1):.1f}x reduction.")


if __name__ == "__main__":
    main()
